//! Property tests for the wire-v2 frame and codec layers.
//!
//! The satellite contract: fuzzed frames — truncated, oversized,
//! bad-magic, bad-checksum, unknown-opcode, mutated payloads — must
//! always produce a *typed* [`WireError`], never a panic, and a
//! recoverable error must leave the stream in sync so the next valid
//! frame still decodes.

use proptest::prelude::*;

use procdb_query::Value;
use procdb_wire::{
    fnv1a_32, opcode, read_frame, write_request, write_response, Request, Response, WireError,
    HEADER_LEN, MAX_PAYLOAD,
};

// ---- strategies -------------------------------------------------------

fn arb_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..24).prop_map(|bytes| {
        // Build printable-ish but arbitrary UTF-8 (including newlines and
        // NULs via the replacement of invalid sequences).
        String::from_utf8_lossy(&bytes).into_owned()
    })
}

fn arb_value() -> BoxedStrategy<Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        proptest::collection::vec(any::<u8>(), 0..16).prop_map(Value::Bytes),
    ]
    .boxed()
}

fn arb_values() -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(arb_value(), 0..6)
}

fn arb_request() -> BoxedStrategy<Request> {
    prop_oneof![
        (arb_string(), any::<u32>())
            .prop_map(|(client, pipeline)| Request::Hello { client, pipeline }),
        arb_string().prop_map(|line| Request::Command { line }),
        (arb_string(), arb_values()).prop_map(|(name, args)| Request::Call { name, args }),
        arb_string().prop_map(|template| Request::Prepare { template }),
        (any::<u32>(), arb_values()).prop_map(|(stmt, args)| Request::Execute { stmt, args }),
        Just(Request::Ping),
        Just(Request::Goodbye),
    ]
    .boxed()
}

fn arb_response() -> BoxedStrategy<Response> {
    prop_oneof![
        (arb_string(), any::<u32>()).prop_map(|(banner, max_pipeline)| Response::HelloAck {
            banner,
            max_pipeline
        }),
        arb_string().prop_map(|text| Response::OkText { text }),
        (
            arb_string(),
            proptest::collection::vec((arb_string(), arb_value()), 0..4),
            proptest::collection::vec(arb_values(), 0..4),
        )
            .prop_map(|(text, out, rows)| Response::CallOk { text, out, rows }),
        any::<u32>().prop_map(|stmt| Response::Prepared { stmt }),
        Just(Response::Pong),
        Just(Response::Bye),
        (any::<u16>(), arb_string()).prop_map(|(code, message)| Response::Error { code, message }),
    ]
    .boxed()
}

fn encode_request(id: u64, req: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    write_request(&mut buf, id, req).unwrap();
    buf
}

fn encode_response(id: u64, resp: &Response) -> Vec<u8> {
    let mut buf = Vec::new();
    write_response(&mut buf, id, resp).unwrap();
    buf
}

// ---- properties -------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// decode ∘ encode is the identity for every request shape.
    #[test]
    fn request_round_trips(req in arb_request(), id in any::<u64>()) {
        let buf = encode_request(id, &req);
        let frame = read_frame(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(frame.request_id, id);
        prop_assert_eq!(Request::decode(&frame).unwrap(), req);
    }

    /// decode ∘ encode is the identity for every response shape.
    #[test]
    fn response_round_trips(resp in arb_response(), id in any::<u64>()) {
        let buf = encode_response(id, &resp);
        let frame = read_frame(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(frame.request_id, id);
        prop_assert_eq!(Response::decode(&frame).unwrap(), resp);
    }

    /// Truncating an encoded frame at any offset yields a typed error —
    /// Closed at zero bytes, Truncated inside the frame — never a panic
    /// or a bogus success.
    #[test]
    fn truncation_is_always_typed(req in arb_request(), cut in 0usize..200) {
        let buf = encode_request(1, &req);
        let cut = cut % buf.len(); // strictly shorter than the full frame
        let short = &buf[..cut];
        match read_frame(&mut &short[..]) {
            Err(WireError::Closed) => prop_assert_eq!(cut, 0),
            Err(WireError::Truncated { got, want }) => {
                prop_assert_eq!(got, cut);
                prop_assert!(want > got);
            }
            other => prop_assert!(false, "truncated frame gave {:?}", other),
        }
    }

    /// Flipping any single byte of a frame never panics: the result is
    /// either a typed error or — when the flip lands in a length-elastic
    /// spot of the payload — a clean decode of *something*. A flip in the
    /// header is always caught by magic or checksum.
    #[test]
    fn single_byte_flips_never_panic(
        req in arb_request(),
        at in 0usize..200,
        bit in 0u8..8,
    ) {
        let mut buf = encode_request(1, &req);
        let at = at % buf.len();
        buf[at] ^= 1 << bit;
        match read_frame(&mut buf.as_slice()) {
            Ok(frame) => {
                // Header survived => flip was in the payload; decoding
                // must still be total.
                prop_assert!(at >= HEADER_LEN);
                let _ = Request::decode(&frame); // must not panic
            }
            Err(e) => {
                prop_assert!(!e.is_recoverable() || at >= HEADER_LEN,
                    "header flip at {} gave recoverable {:?}", at, e);
            }
        }
    }

    /// A checksum-valid header carrying an unknown opcode is recoverable
    /// and consumes exactly its payload: the next frame on the stream
    /// still decodes. This is the no-desync guarantee.
    #[test]
    fn unknown_opcode_does_not_desync_the_stream(
        bad_op in 0x08u8..0x80,
        junk in proptest::collection::vec(any::<u8>(), 0..32),
        follow in arb_request(),
    ) {
        // 0x08..0x80 avoids every assigned request/response opcode.
        let mut stream = Vec::new();
        procdb_wire::write_frame(&mut stream, bad_op, 10, &junk).unwrap();
        write_request(&mut stream, 11, &follow).unwrap();

        let mut r = stream.as_slice();
        let first = read_frame(&mut r).unwrap();
        let err = Request::decode(&first).unwrap_err();
        prop_assert!(matches!(err, WireError::UnknownOpcode(op) if op == bad_op));
        prop_assert!(err.is_recoverable());

        let second = read_frame(&mut r).unwrap();
        prop_assert_eq!(second.request_id, 11);
        prop_assert_eq!(Request::decode(&second).unwrap(), follow);
    }

    /// Same no-desync property for a known opcode with a garbage payload:
    /// Malformed is recoverable and the following frame still decodes.
    #[test]
    fn malformed_payload_does_not_desync_the_stream(
        junk in proptest::collection::vec(any::<u8>(), 0..40),
        follow in arb_response(),
    ) {
        let mut stream = Vec::new();
        // CALL_OK with random bytes: almost never a valid body.
        procdb_wire::write_frame(&mut stream, opcode::CALL_OK, 20, &junk).unwrap();
        write_response(&mut stream, 21, &follow).unwrap();

        let mut r = stream.as_slice();
        let first = read_frame(&mut r).unwrap();
        match Response::decode(&first) {
            Ok(_) => {} // the random bytes happened to be a valid body
            Err(e) => prop_assert!(e.is_recoverable(), "got fatal {:?}", e),
        }

        let second = read_frame(&mut r).unwrap();
        prop_assert_eq!(Response::decode(&second).unwrap(), follow);
    }

    /// Random byte soup at the head of a stream is rejected with a fatal
    /// error (bad magic, checksum, truncation) unless it genuinely starts
    /// with a checksum-valid frame — it never panics or loops.
    #[test]
    fn random_bytes_are_rejected_without_panic(
        soup in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        match read_frame(&mut soup.as_slice()) {
            Ok(frame) => {
                // A 1-in-2^32 checksum collision (or an actual frame);
                // decoding must still be total.
                let _ = Request::decode(&frame);
            }
            Err(e) => prop_assert!(
                !e.is_recoverable(),
                "garbage head gave recoverable {:?}", e
            ),
        }
    }

    /// Hostile payload lengths: a header claiming more than MAX_PAYLOAD
    /// is Oversized (fatal, nothing allocated); a large-but-legal claim
    /// with missing bytes is Truncated.
    #[test]
    fn hostile_lengths_are_typed(extra in 1u32..1024, id in any::<u64>()) {
        // Over the cap.
        let mut head = [0u8; HEADER_LEN];
        head[0..4].copy_from_slice(&procdb_wire::MAGIC);
        head[4] = procdb_wire::PROTOCOL_VERSION;
        head[5] = opcode::COMMAND;
        head[8..16].copy_from_slice(&id.to_le_bytes());
        head[16..20].copy_from_slice(&(MAX_PAYLOAD + extra).to_le_bytes());
        let crc = fnv1a_32(&head[0..20]);
        head[20..24].copy_from_slice(&crc.to_le_bytes());
        prop_assert!(matches!(
            read_frame(&mut &head[..]),
            Err(WireError::Oversized(_))
        ));

        // Legal claim, missing body.
        head[16..20].copy_from_slice(&extra.to_le_bytes());
        let crc = fnv1a_32(&head[0..20]);
        head[20..24].copy_from_slice(&crc.to_le_bytes());
        prop_assert!(matches!(
            read_frame(&mut &head[..]),
            Err(WireError::Truncated { .. })
        ));
    }
}
