//! A small persistent worker pool for scatter-gather fan-out.
//!
//! Spawning a thread per access would dwarf the work being fanned out
//! (a shard partial is often a few page reads); the pool keeps `T`
//! long-lived workers pulling jobs off a shared queue. [`WorkerPool::scatter`]
//! submits one job per shard and blocks until **all** results are in,
//! returning them in submission order regardless of completion order —
//! the merge step depends on a stable shard → result mapping.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

use parking_lot::Mutex;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed-size pool of worker threads with an ordered scatter primitive.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn a pool of `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> WorkerPool {
        let threads = threads.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                thread::Builder::new()
                    .name(format!("shard-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the queue lock only for the dequeue, not
                        // while running the job.
                        let job = rx.lock().recv();
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // pool dropped
                        }
                    })
                    .expect("spawn shard worker")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Run every job on the pool and return their results **in job
    /// order**. Blocks until all jobs finish. A panicking job does not
    /// poison the pool: the payload is captured on the worker and
    /// re-raised here, on the caller.
    pub fn scatter<R: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> R + Send + 'static>>,
    ) -> Vec<R> {
        let n = jobs.len();
        let (rtx, rrx) = channel::<(usize, thread::Result<R>)>();
        let tx = self.tx.as_ref().expect("pool is alive until dropped");
        for (idx, job) in jobs.into_iter().enumerate() {
            let rtx = rtx.clone();
            tx.send(Box::new(move || {
                let out = catch_unwind(AssertUnwindSafe(job));
                // The gather side may have bailed on an earlier panic;
                // a dead receiver is fine.
                let _ = rtx.send((idx, out));
            }))
            .expect("worker queue open");
        }
        drop(rtx);
        let mut slots: Vec<Option<thread::Result<R>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (idx, out) = rrx.recv().expect("every scattered job reports");
            slots[idx] = Some(out);
        }
        slots
            .into_iter()
            .map(|slot| match slot.expect("all result slots filled") {
                Ok(r) => r,
                Err(payload) => resume_unwind(payload),
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel makes every worker's recv fail and exit.
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_returns_results_in_job_order() {
        let pool = WorkerPool::new(4);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16)
            .map(|i| {
                let f: Box<dyn FnOnce() -> usize + Send> = Box::new(move || {
                    // Finish out of submission order.
                    std::thread::sleep(std::time::Duration::from_millis(((16 - i) % 5) as u64));
                    i * i
                });
                f
            })
            .collect();
        let got = pool.scatter(jobs);
        assert_eq!(got, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn pool_survives_a_panicking_job() {
        let pool = WorkerPool::new(2);
        let bad: Vec<Box<dyn FnOnce() -> u32 + Send>> =
            vec![Box::new(|| panic!("job failed")), Box::new(|| 7)];
        let outcome = catch_unwind(AssertUnwindSafe(|| pool.scatter(bad)));
        assert!(outcome.is_err(), "panic must surface on the caller");
        // The pool still works after the panic.
        let ok: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![Box::new(|| 1), Box::new(|| 2)];
        assert_eq!(pool.scatter(ok), vec![1, 2]);
    }
}
