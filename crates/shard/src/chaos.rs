//! Seeded **message chaos** on the replication paths.
//!
//! Where [`procdb_storage::FaultPlan`] breaks the storage substrate,
//! a [`ChaosPlan`] breaks the *network* the replica groups pretend to
//! have: each delta shipped from a primary to a follower can be
//! delayed (a slow link), dropped (a dead link — the follower is
//! declared down at an exact op boundary and must resync), duplicated
//! (a retransmit the follower must suppress), or held for reordering
//! (delivered behind its successor through the follower's in-order
//! inbox). Supervisor heartbeats can be delayed too, widening the
//! window in which a dead primary keeps its role — the window epoch
//! fencing exists to contain. A `fence` probability springs exactly
//! that trap on demand: the primary observes the promotion only after
//! deciding to commit, takes the typed `FENCED` rejection, and demotes
//! itself into resync.
//!
//! Everything is driven by one seeded xorshift64* stream, so a chaos
//! schedule replays deterministically for a given plan; decisions and
//! their counts are exported as `procdb_chaos_injected_total{kind=}`.
//!
//! [`procdb_storage::FaultPlan`]: procdb_storage::FaultPlan

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use procdb_obs::Counter;

/// A seeded plan of message-level failures for the replication layer.
///
/// Probabilities are per shipped delta (or per supervisor heartbeat for
/// `heartbeat_delay_prob`, per commit attempt for `fence_prob`); all
/// default to 0, so `ChaosPlan::new(seed)` is inert until a knob is
/// raised.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// RNG seed; equal seeds replay equal chaos schedules.
    pub seed: u64,
    /// Probability a ship is delayed by a uniform draw from the window.
    pub delay_prob: f64,
    /// `[min, max]` delivery delay in milliseconds.
    pub delay_ms: (u64, u64),
    /// Probability a ship is dropped outright (the follower is marked
    /// down at an exact op boundary and must catch up by resync).
    pub drop_prob: f64,
    /// Probability a ship is delivered twice (the duplicate must be
    /// suppressed by the follower's LSN guard).
    pub dup_prob: f64,
    /// Probability a ship is held and delivered behind its successor
    /// (the follower's in-order inbox re-sequences it).
    pub reorder_prob: f64,
    /// Probability one supervisor heartbeat is delayed (that slot's
    /// liveness check is skipped for the tick).
    pub heartbeat_delay_prob: f64,
    /// Probability a commit attempt observes a promotion that raced it:
    /// the freshest live follower is promoted (a real epoch bump) and
    /// the attempt is rejected with the typed `FENCED` error.
    pub fence_prob: f64,
}

impl ChaosPlan {
    /// An inert plan (every probability 0) with the given seed.
    pub fn new(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            delay_prob: 0.0,
            delay_ms: (1, 5),
            drop_prob: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            heartbeat_delay_prob: 0.0,
            fence_prob: 0.0,
        }
    }

    /// Delay ships with probability `p`.
    pub fn delays(mut self, p: f64) -> ChaosPlan {
        self.delay_prob = p;
        self
    }

    /// Set the delivery-delay window (milliseconds, inclusive).
    pub fn delay_window_ms(mut self, min: u64, max: u64) -> ChaosPlan {
        self.delay_ms = (min.min(max), max.max(min));
        self
    }

    /// Drop ships with probability `p`.
    pub fn drops(mut self, p: f64) -> ChaosPlan {
        self.drop_prob = p;
        self
    }

    /// Duplicate ships with probability `p`.
    pub fn duplicates(mut self, p: f64) -> ChaosPlan {
        self.dup_prob = p;
        self
    }

    /// Hold ships for reordering with probability `p`.
    pub fn reorders(mut self, p: f64) -> ChaosPlan {
        self.reorder_prob = p;
        self
    }

    /// Delay supervisor heartbeats with probability `p`.
    pub fn heartbeat_delays(mut self, p: f64) -> ChaosPlan {
        self.heartbeat_delay_prob = p;
        self
    }

    /// Spring the fencing trap on commit attempts with probability `p`.
    pub fn fences(mut self, p: f64) -> ChaosPlan {
        self.fence_prob = p;
        self
    }

    /// Is every knob at zero?
    pub fn is_inert(&self) -> bool {
        self.delay_prob == 0.0
            && self.drop_prob == 0.0
            && self.dup_prob == 0.0
            && self.reorder_prob == 0.0
            && self.heartbeat_delay_prob == 0.0
            && self.fence_prob == 0.0
    }

    /// One-line rendering for command responses.
    pub fn describe(&self) -> String {
        format!(
            "chaos plan: seed {}, delay {} ({}..{}ms), drop {}, dup {}, reorder {}, \
             heartbeat {}, fence {}",
            self.seed,
            self.delay_prob,
            self.delay_ms.0,
            self.delay_ms.1,
            self.drop_prob,
            self.dup_prob,
            self.reorder_prob,
            self.heartbeat_delay_prob,
            self.fence_prob,
        )
    }
}

/// What chaos decided for one shipped delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShipFate {
    /// Sleep this long before delivering.
    pub delay: Option<Duration>,
    /// Do not deliver at all; the follower link is dead.
    pub drop: bool,
    /// Deliver the ship twice.
    pub duplicate: bool,
    /// Park the ship in the follower's inbox without draining — it is
    /// delivered (in order) by a later drain.
    pub hold: bool,
}

impl ShipFate {
    /// The fate of every ship when no chaos is installed.
    pub const CLEAN: ShipFate = ShipFate {
        delay: None,
        drop: false,
        duplicate: false,
        hold: false,
    };
}

/// Counter snapshot for `chaos status`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosStatus {
    /// Ships delayed.
    pub delayed: u64,
    /// Ships dropped (follower marked down).
    pub dropped: u64,
    /// Ships delivered twice.
    pub duplicated: u64,
    /// Ships held for out-of-order delivery.
    pub reordered: u64,
    /// Supervisor heartbeats delayed.
    pub heartbeats_delayed: u64,
    /// Commit attempts fenced by a sprung promotion.
    pub fenced: u64,
}

/// The live injector: a [`ChaosPlan`] plus its seeded RNG stream and
/// decision counters. Installed on a `ShardedEngine`; consulted on
/// every delta ship, supervisor tick, and commit attempt.
#[derive(Debug)]
pub struct ChaosInjector {
    plan: ChaosPlan,
    rng: Mutex<u64>,
    delayed: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    reordered: AtomicU64,
    heartbeats_delayed: AtomicU64,
    fenced: AtomicU64,
    m_delay: Counter,
    m_drop: Counter,
    m_dup: Counter,
    m_reorder: Counter,
    m_heartbeat: Counter,
    m_fence: Counter,
}

impl ChaosInjector {
    /// Seed the RNG stream from the plan and register the metrics.
    pub fn new(plan: ChaosPlan) -> Arc<ChaosInjector> {
        let reg = procdb_obs::global();
        let m = |kind: &str| reg.counter("procdb_chaos_injected_total", &[("kind", kind)]);
        Arc::new(ChaosInjector {
            rng: Mutex::new(plan.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1),
            plan,
            delayed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            reordered: AtomicU64::new(0),
            heartbeats_delayed: AtomicU64::new(0),
            fenced: AtomicU64::new(0),
            m_delay: m("delay"),
            m_drop: m("drop"),
            m_dup: m("duplicate"),
            m_reorder: m("reorder"),
            m_heartbeat: m("heartbeat_delay"),
            m_fence: m("fence"),
        })
    }

    /// The installed plan.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    /// xorshift64* — one shared stream so a schedule replays per seed.
    fn next_u64(&self) -> u64 {
        let mut rng = self.rng.lock().unwrap_or_else(|e| e.into_inner());
        let mut x = *rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn chance(&self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Decide the fate of one ship to one follower. Drop wins over the
    /// other effects (a dead link neither delays nor duplicates).
    pub fn decide_ship(&self) -> ShipFate {
        if self.chance(self.plan.drop_prob) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            self.m_drop.inc();
            return ShipFate {
                drop: true,
                ..ShipFate::CLEAN
            };
        }
        let delay = self.chance(self.plan.delay_prob).then(|| {
            let (lo, hi) = self.plan.delay_ms;
            let span = hi.saturating_sub(lo) + 1;
            self.delayed.fetch_add(1, Ordering::Relaxed);
            self.m_delay.inc();
            Duration::from_millis(lo + self.next_u64() % span)
        });
        let duplicate = self.chance(self.plan.dup_prob);
        if duplicate {
            self.duplicated.fetch_add(1, Ordering::Relaxed);
            self.m_dup.inc();
        }
        let hold = self.chance(self.plan.reorder_prob);
        if hold {
            self.reordered.fetch_add(1, Ordering::Relaxed);
            self.m_reorder.inc();
        }
        ShipFate {
            delay,
            drop: false,
            duplicate,
            hold,
        }
    }

    /// Should this supervisor tick's liveness check be skipped?
    pub fn heartbeat_delayed(&self) -> bool {
        let fire = self.chance(self.plan.heartbeat_delay_prob);
        if fire {
            self.heartbeats_delayed.fetch_add(1, Ordering::Relaxed);
            self.m_heartbeat.inc();
        }
        fire
    }

    /// Should this commit attempt be fenced by a sprung promotion?
    /// (The caller only springs the trap when a live follower exists.)
    pub fn fence_fires(&self) -> bool {
        self.chance(self.plan.fence_prob)
    }

    /// Record that a fence actually sprang (a follower was promoted and
    /// the commit was rejected).
    pub fn note_fenced(&self) {
        self.fenced.fetch_add(1, Ordering::Relaxed);
        self.m_fence.inc();
    }

    /// Current decision counts.
    pub fn status(&self) -> ChaosStatus {
        ChaosStatus {
            delayed: self.delayed.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            reordered: self.reordered.load(Ordering::Relaxed),
            heartbeats_delayed: self.heartbeats_delayed.load(Ordering::Relaxed),
            fenced: self.fenced.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_never_fires() {
        let inj = ChaosInjector::new(ChaosPlan::new(7));
        for _ in 0..200 {
            assert_eq!(inj.decide_ship(), ShipFate::CLEAN);
            assert!(!inj.heartbeat_delayed());
            assert!(!inj.fence_fires());
        }
        let st = inj.status();
        assert_eq!(
            (st.delayed, st.dropped, st.duplicated, st.reordered),
            (0, 0, 0, 0)
        );
    }

    #[test]
    fn certainties_fire_and_drop_wins() {
        let inj = ChaosInjector::new(ChaosPlan::new(7).drops(1.0).duplicates(1.0));
        let fate = inj.decide_ship();
        assert!(fate.drop);
        assert!(!fate.duplicate, "a dropped ship cannot also duplicate");
        let inj = ChaosInjector::new(
            ChaosPlan::new(7)
                .delays(1.0)
                .delay_window_ms(2, 4)
                .duplicates(1.0)
                .reorders(1.0),
        );
        let fate = inj.decide_ship();
        let d = fate.delay.expect("certain delay");
        assert!((2..=4).contains(&d.as_millis()), "{d:?} outside window");
        assert!(fate.duplicate && fate.hold);
    }

    #[test]
    fn same_seed_replays_the_same_schedule() {
        let plan = ChaosPlan::new(42)
            .delays(0.3)
            .drops(0.1)
            .duplicates(0.2)
            .reorders(0.2)
            .delay_window_ms(1, 8);
        let a: Vec<ShipFate> = {
            let inj = ChaosInjector::new(plan.clone());
            (0..64).map(|_| inj.decide_ship()).collect()
        };
        let b: Vec<ShipFate> = {
            let inj = ChaosInjector::new(plan.clone());
            (0..64).map(|_| inj.decide_ship()).collect()
        };
        assert_eq!(a, b, "equal seeds must replay equal chaos");
        let mut reseeded = plan.clone();
        reseeded.seed = 43;
        let c: Vec<ShipFate> = {
            let inj = ChaosInjector::new(reseeded);
            (0..64).map(|_| inj.decide_ship()).collect()
        };
        assert_ne!(a, c, "distinct seeds must diverge");
        assert!(
            a.iter().any(|f| f.drop) && a.iter().any(|f| f.duplicate),
            "probabilistic knobs must actually fire over 64 draws: {a:?}"
        );
    }

    #[test]
    fn describe_and_inert() {
        assert!(ChaosPlan::new(1).is_inert());
        let p = ChaosPlan::new(9).drops(0.5);
        assert!(!p.is_inert());
        assert!(p.describe().contains("seed 9"), "{}", p.describe());
        assert!(p.describe().contains("drop 0.5"), "{}", p.describe());
    }
}
