//! The partitioned engine: `S` shards — each a **replica group** of `R`
//! independent [`Engine`]s behind per-replica readers-writer locks — a
//! [`Router`] that places every `R1` tuple, and a [`WorkerPool`] that
//! fans procedure accesses out across shards.
//!
//! ## Routing
//!
//! * **Accesses** scatter to every shard: each shard's *primary*
//!   computes its partial answer over its `R1` slice (shared lock;
//!   escalated to exclusive only when the shard's strategy must write —
//!   refill a cache, fold maintenance, rebuild after a crash), and the
//!   partials merge by sorting schema-encoded rows. Partition
//!   disjointness makes the merged multiset exactly the single-engine
//!   answer.
//! * **Updates** route to the shard owning the victim key; the shard's
//!   primary applies the mutation first, then the same routed
//!   [`DeltaOp`] ships synchronously to each live follower (each
//!   follower runs its *own* strategy maintenance — AVM/Rete followers
//!   keep their own view state, CI followers their own i-locks — so
//!   failover preserves each strategy's §3 recovery class). A re-key
//!   whose new key hashes elsewhere becomes a *cross-shard move*:
//!   delete-take on the source group, rewrite the key, insert on the
//!   destination group — never holding two shard groups' mutation locks
//!   at once, so shard locks cannot deadlock.
//! * **Inner-relation updates** (`R2`/`R3` are replicated) broadcast to
//!   every shard group.
//!
//! ## Failover & resync
//!
//! A crashed primary (an injected kill-point latch, or an operator
//! `crash N`) is **promoted away from**: the freshest live follower (by
//! last-applied delta LSN; synchronous fan-out keeps live followers at
//! the head) becomes primary, the scatter-gather paths re-point, and
//! the in-flight operation retries on the new primary — so with
//! `replicas ≥ 2` a primary failure costs latency, not availability.
//! Promotion is triggered synchronously by the failing access/update
//! path, immediately by [`ShardedEngine::crash`], by an operator
//! [`ShardedEngine::promote`], or by the optional background
//! *supervisor* thread that health-checks primaries. The demoted
//! ex-primary is marked suspect: it may have applied half an operation,
//! so its position in the delta stream is ambiguous.
//!
//! A rejoining replica ([`ShardedEngine::resync`], also run by
//! [`ShardedEngine::recover`]) first recovers its engine, then catches
//! up by replaying the shard's delta log past its last applied LSN;
//! when the log has been truncated past its position — or its stream
//! position is ambiguous — it falls back to the conservative path: a
//! full `R1` snapshot install from the current primary plus whole
//! derived-state invalidation, which each strategy then repairs on
//! first access exactly as post-crash recovery does.
//!
//! Optional **hedged reads** ([`ShardedEngine::set_hedged_reads`]) let
//! an access whose primary lock is contended serve from a live follower
//! instead of waiting — safe because live followers are synchronously
//! fresh.
//!
//! ## Failure containment
//!
//! Every replica group carries a monotonically increasing **epoch**,
//! bumped exactly once per promotion at the single serialization point
//! (the compare-exchange on the primary pointer). Every shipped delta
//! is stamped `(epoch, LSN)`; followers keep an epoch watermark and
//! refuse stale-epoch ships, and a primary that observes the epoch
//! moving past it mid-commit rejects the write with the typed
//! [`StorageError::Fenced`] error and demotes itself into resync — so a
//! dual-primary window can never commit divergent state. An installed
//! [`ChaosPlan`] perturbs the shipping path (delays, drops, duplicates,
//! reorders through each follower's in-order inbox) and the supervisor
//! heartbeat, and can spring the fencing trap on demand.
//!
//! The access path is guarded by a per-shard **circuit breaker**
//! ([`BreakerState`]): consecutive failures trip it open, shedding
//! requests fast with the typed [`StorageError::Busy`] error until a
//! cooldown admits a half-open probe. A request deadline installed via
//! [`procdb_obs::install_deadline`] propagates into every scatter
//! worker; an exhausted budget surfaces as the typed
//! [`StorageError::Deadline`] error instead of queueing behind a slow
//! shard.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use procdb_core::{
    DeltaAck, DeltaObserver, DeltaOp, Engine, RecoveryOutcome, ShippedDelta, StrategyKind,
};
use procdb_obs::{Counter, Gauge, Histogram};
use procdb_query::{Schema, Tuple, Value};
use procdb_storage::{CostConstants, Result, StorageError};

use crate::chaos::{ChaosInjector, ChaosPlan, ChaosStatus, ShipFate};
use crate::pool::WorkerPool;
use crate::replica::{
    DeltaLog, Replica, ReplicaRole, ReplicaStatus, ResyncReport, DEFAULT_LOG_CAP,
};
use crate::router::Router;

/// A boxed per-shard access task handed to the [`WorkerPool`]: runs one
/// shard's share of a scatter and returns `(partial rows, priced ms)`.
type AccessJob = Box<dyn FnOnce() -> Result<(Vec<Tuple>, f64)> + Send>;

/// Total time an access job may spend retrying one shard through
/// failovers before surfacing the error (the bounded failover window).
const FAILOVER_WINDOW: Duration = Duration::from_secs(2);

/// Consecutive access failures that trip a shard's circuit breaker.
const BREAKER_TRIP_AFTER: u32 = 5;

/// How long an open breaker sheds before admitting a half-open probe.
const BREAKER_COOLDOWN: Duration = Duration::from_millis(250);

/// Polling granularity for deadline-budgeted lock acquisition.
const DEADLINE_POLL: Duration = Duration::from_micros(100);

/// Circuit-breaker state of one shard's access path (exported as the
/// `procdb_breaker_state{shard=}` gauge: 0 closed, 1 open, 2 half-open).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: accesses flow normally.
    Closed,
    /// Tripped: accesses shed fast with the typed `BUSY` error until the
    /// cooldown elapses.
    Open,
    /// Cooldown elapsed: exactly one probe access is admitted; its
    /// outcome closes or re-opens the breaker.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

struct BreakerInner {
    state: BreakerState,
    failures: u32,
    opened_at: Option<Instant>,
    probing: bool,
}

/// Per-shard circuit breaker on the access path: [`BREAKER_TRIP_AFTER`]
/// consecutive failures open it, shedding further accesses fast (the
/// shard is degraded; queueing behind it just converts one slow shard
/// into whole-request latency); after [`BREAKER_COOLDOWN`] a single
/// probe is admitted, and its outcome closes or re-opens the breaker.
struct Breaker {
    inner: Mutex<BreakerInner>,
    state_gauge: Gauge,
    trips: Counter,
    sheds: Counter,
}

impl Breaker {
    fn new(labels: &[(&str, &str)]) -> Breaker {
        let reg = procdb_obs::global();
        let state_gauge = reg.gauge("procdb_breaker_state", labels);
        state_gauge.set(0.0);
        Breaker {
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                failures: 0,
                opened_at: None,
                probing: false,
            }),
            state_gauge,
            trips: reg.counter("procdb_breaker_trips_total", labels),
            sheds: reg.counter("procdb_breaker_sheds_total", labels),
        }
    }

    fn publish(&self, s: BreakerState) {
        self.state_gauge.set(match s {
            BreakerState::Closed => 0.0,
            BreakerState::Open => 1.0,
            BreakerState::HalfOpen => 2.0,
        });
    }

    /// May this access proceed? `false` = shed fast with `BUSY`.
    fn admit(&self) -> bool {
        let mut b = self.inner.lock();
        let admitted = match b.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if b.opened_at.is_some_and(|t| t.elapsed() >= BREAKER_COOLDOWN) {
                    b.state = BreakerState::HalfOpen;
                    b.probing = true;
                    self.publish(BreakerState::HalfOpen);
                    true
                } else {
                    false
                }
            }
            // Half-open: one probe in flight at a time.
            BreakerState::HalfOpen => {
                if b.probing {
                    false
                } else {
                    b.probing = true;
                    true
                }
            }
        };
        if !admitted {
            self.sheds.inc();
        }
        admitted
    }

    fn on_success(&self) {
        let mut b = self.inner.lock();
        b.failures = 0;
        b.probing = false;
        if b.state != BreakerState::Closed {
            b.state = BreakerState::Closed;
            b.opened_at = None;
            self.publish(BreakerState::Closed);
        }
    }

    fn on_failure(&self) {
        let mut b = self.inner.lock();
        b.probing = false;
        b.failures += 1;
        let trip = match b.state {
            BreakerState::HalfOpen => true, // failed probe re-opens
            BreakerState::Closed => b.failures >= BREAKER_TRIP_AFTER,
            BreakerState::Open => false,
        };
        if trip {
            b.state = BreakerState::Open;
            b.opened_at = Some(Instant::now());
            self.trips.inc();
            self.publish(BreakerState::Open);
        }
    }

    fn state(&self) -> BreakerState {
        self.inner.lock().state
    }

    fn shed_count(&self) -> u64 {
        self.sheds.get()
    }
}

/// One shard: a replica group behind per-replica readers-writer locks,
/// a mutation mutex that orders the shard's delta stream, the delta
/// log, and the shard-labeled service metrics (each engine's own
/// metric series already carry the `shard` label via
/// `EngineOptions::shard`; replicas of one shard share that label).
struct ShardSlot {
    id: usize,
    replicas: Vec<Arc<Replica>>,
    /// Index into `replicas` of the current primary.
    primary: AtomicUsize,
    /// Replica-group promotion counter, starting at 1. Bumped exactly
    /// once per promotion by the winner of the compare-exchange on
    /// `primary`; the committed delta stream is stamped with it so
    /// fenced ex-primaries are refused everywhere.
    epoch: AtomicU64,
    /// Orders mutations (and their log appends + fan-out) per shard.
    mutation: Mutex<()>,
    log: Mutex<DeltaLog>,
    /// Optional tap on the committed delta stream (the front result
    /// cache): notified synchronously at the commit point, before the
    /// mutation returns, and on every epoch bump.
    observer: RwLock<Option<Arc<dyn DeltaObserver>>>,
    breaker: Breaker,
    accesses: Counter,
    updates: Counter,
    escalations: Counter,
    access_ms: Histogram,
    failovers: Counter,
    replica_applied: Counter,
    replica_drops: Counter,
    resync_replayed: Counter,
    resync_full: Counter,
    hedged: Counter,
    fenced: Counter,
}

impl ShardSlot {
    fn new(id: usize, engines: Vec<Engine>) -> ShardSlot {
        let reg = procdb_obs::global();
        let id_str = id.to_string();
        let labels: &[(&str, &str)] = &[("shard", id_str.as_str())];
        ShardSlot {
            id,
            replicas: engines
                .into_iter()
                .enumerate()
                .map(|(r, e)| Arc::new(Replica::new(r, e)))
                .collect(),
            primary: AtomicUsize::new(0),
            epoch: AtomicU64::new(1),
            mutation: Mutex::new(()),
            log: Mutex::new(DeltaLog::new(DEFAULT_LOG_CAP)),
            observer: RwLock::new(None),
            breaker: Breaker::new(labels),
            accesses: reg.counter("procdb_shard_accesses_total", labels),
            updates: reg.counter("procdb_shard_updates_total", labels),
            escalations: reg.counter("procdb_shard_escalations_total", labels),
            access_ms: reg.histogram("procdb_shard_access_ms", labels),
            failovers: reg.counter("procdb_failover_total", labels),
            replica_applied: reg.counter("procdb_replica_applied_total", labels),
            replica_drops: reg.counter("procdb_replica_drops_total", labels),
            resync_replayed: reg.counter("procdb_replica_resync_replayed_total", labels),
            resync_full: reg.counter("procdb_replica_resync_full_total", labels),
            hedged: reg.counter("procdb_replica_hedged_reads_total", labels),
            fenced: reg.counter("procdb_fenced_total", labels),
        }
    }

    fn primary_idx(&self) -> usize {
        self.primary.load(Ordering::Relaxed)
    }

    fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    fn has_live_follower(&self, of: usize) -> bool {
        self.replicas.iter().any(|r| r.idx != of && r.is_alive())
    }

    /// Notify the delta-stream tap (if any) of one committed op.
    fn notify_delta(&self, epoch: u64, lsn: u64, op: &DeltaOp) {
        if let Some(obs) = self.observer.read().as_ref() {
            obs.on_delta(self.id, epoch, lsn, op);
        }
    }

    /// Notify the delta-stream tap (if any) of an epoch bump.
    fn notify_epoch(&self, epoch: u64) {
        if let Some(obs) = self.observer.read().as_ref() {
            obs.on_epoch_bump(self.id, epoch);
        }
    }
}

/// Promote the freshest live follower away from `from`, dropping `from`
/// from the group at what the *caller* judged to be an op boundary (an
/// operator crash or a read-path failure never moves the delta stream,
/// so `from`'s applied LSN stays exact and resync may replay; a caller
/// that watched `from` die **mid-apply** marks it suspect itself before
/// failing over). Lock-free against concurrent promotions: the primary
/// pointer swaps by compare-exchange, and a lost race returns whoever
/// won. `None` when no live follower exists.
fn failover(slot: &ShardSlot, from: usize) -> Option<usize> {
    let cur = slot.primary_idx();
    if cur != from {
        return Some(cur); // someone already promoted past `from`
    }
    let best = slot
        .replicas
        .iter()
        .filter(|r| r.idx != from && r.is_alive())
        .max_by_key(|r| r.applied_lsn())?;
    if promote_cas(slot, from, best.idx) {
        slot.replicas[from].mark_down();
        Some(best.idx)
    } else {
        Some(slot.primary_idx())
    }
}

/// The single serialization point for promotions: swing the primary
/// pointer `from -> to` by compare-exchange and, only on the winning
/// swap, bump the group epoch (fencing `from`) and seed the new
/// primary's epoch watermark. Concurrent promoters — a supervisor tick,
/// a failing access path, an operator `promote` — race on the CAS, so
/// one promotion bumps the epoch exactly once no matter how many
/// callers observed the same failure.
fn promote_cas(slot: &ShardSlot, from: usize, to: usize) -> bool {
    if slot
        .primary
        .compare_exchange(from, to, Ordering::AcqRel, Ordering::Acquire)
        .is_err()
    {
        return false;
    }
    let epoch = slot.epoch.fetch_add(1, Ordering::AcqRel) + 1;
    slot.replicas[to].note_epoch(epoch);
    slot.failovers.inc();
    slot.notify_epoch(epoch);
    true
}

/// Apply one in-order delta on a follower's engine (the caller has
/// already established that `delta.lsn` is the follower's next LSN).
fn apply_one(slot: &ShardSlot, rep: &Replica, delta: &ShippedDelta, c: &CostConstants) -> f64 {
    let mut eng = rep.engine.write();
    let before = eng.ledger().snapshot();
    let res = eng.apply_delta_op(&delta.op);
    let ms = eng.ledger().snapshot().since(&before).priced(c);
    match res {
        Err(_) if eng.is_crashed() => {
            drop(eng);
            rep.mark_suspect();
            slot.replica_drops.inc();
        }
        _ => {
            eng.note_applied_lsn(delta.lsn);
            rep.applied.store(delta.lsn, Ordering::Relaxed);
            slot.replica_applied.inc();
        }
    }
    ms
}

/// Deliver one epoch-stamped delta to a follower, enforcing the two
/// follower-side guards:
///
/// * **epoch watermark** — a ship stamped older than an epoch the
///   follower has already seen came from a fenced ex-primary and is
///   refused at the door;
/// * **LSN order** — a duplicate (`lsn` at or below the applied head)
///   is suppressed; a ship ahead of the next expected LSN parks in the
///   inbox until the gap fills (TCP-style reassembly).
///
/// With `park` set the ship is only queued (the chaos *reorder* fate):
/// a later delivery drains it in order. Returns the priced follower
/// maintenance cost.
fn deliver(
    slot: &ShardSlot,
    rep: &Replica,
    delta: &ShippedDelta,
    c: &CostConstants,
    park: bool,
) -> f64 {
    deliver_acked_inner(slot, rep, delta, c, park).0
}

/// [`deliver`], returning the follower's epoch-stamped [`DeltaAck`]
/// (`None` when the ship was refused, parked, or the follower died).
fn deliver_acked(
    slot: &ShardSlot,
    rep: &Replica,
    delta: &ShippedDelta,
    c: &CostConstants,
) -> (f64, Option<DeltaAck>) {
    deliver_acked_inner(slot, rep, delta, c, false)
}

fn deliver_acked_inner(
    slot: &ShardSlot,
    rep: &Replica,
    delta: &ShippedDelta,
    c: &CostConstants,
    park: bool,
) -> (f64, Option<DeltaAck>) {
    if !rep.note_epoch(delta.epoch) {
        return (0.0, None); // stale-epoch ship from a fenced primary
    }
    let next = rep.applied_lsn() + 1;
    if !park
        && delta.lsn == next
        && rep
            .inbox
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty()
    {
        // Hot path: in order with nothing parked — apply directly,
        // no clone, no queue.
        let ms = apply_one(slot, rep, delta, c);
        return (ms, ack_of(rep));
    }
    if delta.lsn < next {
        return (0.0, ack_of(rep)); // duplicate of an applied op
    }
    {
        let mut inbox = rep.inbox.lock().unwrap_or_else(|e| e.into_inner());
        if !inbox.iter().any(|d| d.lsn == delta.lsn) {
            inbox.push(delta.clone());
        }
    }
    if park {
        return (0.0, None); // held: a later delivery drains it
    }
    // Drain the contiguous prefix the inbox can now supply.
    let mut ms = 0.0;
    loop {
        let next = rep.applied_lsn() + 1;
        let d = {
            let mut inbox = rep.inbox.lock().unwrap_or_else(|e| e.into_inner());
            match inbox.iter().position(|d| d.lsn == next) {
                Some(i) => inbox.remove(i),
                None => break,
            }
        };
        ms += apply_one(slot, rep, &d, c);
        if !rep.is_alive() {
            break; // crashed mid-apply; already marked suspect
        }
    }
    (ms, rep.is_alive().then(|| ack_of(rep)).flatten())
}

/// A follower's current ack: its epoch watermark and applied LSN.
fn ack_of(rep: &Replica) -> Option<DeltaAck> {
    Some(DeltaAck {
        epoch: rep.last_epoch.load(Ordering::Relaxed),
        lsn: rep.applied_lsn(),
        replica: rep.idx,
    })
}

/// Serve one access on one replica: shared path first, escalating to
/// the exclusive lock when the strategy must write. Returns
/// `(rows, priced_ms, escalated)`. With a request deadline installed on
/// the worker thread, the exclusive-lock acquisition is budgeted: a
/// lock that stays contended past the deadline surfaces the typed
/// [`StorageError::Deadline`] error instead of queueing indefinitely.
fn serve_on(
    rep: &Replica,
    shard: usize,
    i: usize,
    c: &CostConstants,
) -> Result<(Vec<Tuple>, f64, bool)> {
    {
        let eng = rep.engine.read();
        let before = eng.ledger().snapshot();
        if let Some(rows) = eng.access_shared(i)? {
            let ms = eng.ledger().snapshot().since(&before).priced(c);
            return Ok((rows, ms, false));
        }
    }
    let mut eng = match procdb_obs::current_deadline() {
        None => rep.engine.write(),
        Some(deadline) => loop {
            if let Some(guard) = rep.engine.try_write() {
                break guard;
            }
            if Instant::now() >= deadline {
                return Err(StorageError::Deadline { shard });
            }
            std::thread::sleep(DEADLINE_POLL);
        },
    };
    let before = eng.ledger().snapshot();
    let rows = eng.access(i)?;
    let ms = eng.ledger().snapshot().since(&before).priced(c);
    Ok((rows, ms, true))
}

/// Hedged read: serve from any live follower whose lock is free, via
/// the shared (read-only) path. Live followers are synchronously fresh,
/// so the answer equals the primary's. `Ok(None)` when no follower
/// could serve without writing.
fn hedged_read(
    slot: &ShardSlot,
    pidx: usize,
    i: usize,
    c: &CostConstants,
) -> Result<Option<(Vec<Tuple>, f64)>> {
    for rep in &slot.replicas {
        if rep.idx == pidx || !rep.is_alive() {
            continue;
        }
        if let Some(eng) = rep.engine.try_read() {
            let before = eng.ledger().snapshot();
            if let Some(rows) = eng.access_shared(i)? {
                let ms = eng.ledger().snapshot().since(&before).priced(c);
                slot.hedged.inc();
                return Ok(Some((rows, ms)));
            }
        }
    }
    Ok(None)
}

/// The background health-checker: promotes away from crashed primaries
/// so failover is bounded even with no traffic on the failed shard.
struct Supervisor {
    shutdown: Arc<AtomicBool>,
    handle: JoinHandle<()>,
}

/// A point-in-time summary of one shard, for `stats`/`metrics`
/// reporting and the per-shard bench section.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard id (dense, `0..shards`).
    pub shard: usize,
    /// Procedure accesses this shard served (partials count once each).
    pub accesses: u64,
    /// Update transactions routed to (or broadcast through) this shard.
    pub updates: u64,
    /// Accesses that could not finish under the shared lock and
    /// re-ran under the exclusive one (lock-conflict proxy).
    pub escalations: u64,
    /// Buffer-pool hits on the primary's private pager.
    pub buffer_hits: u64,
    /// Buffer-pool faults (misses) on the primary's private pager.
    pub buffer_faults: u64,
    /// Crashes simulated on the current primary so far.
    pub crash_epoch: u64,
    /// Derived-state rebuilds still deferred to first access (primary).
    pub rebuilds_pending: usize,
    /// Fraction of caches currently valid (CI only; primary).
    pub valid_fraction: Option<f64>,
    /// `R1` tuples this shard owns (primary's copy).
    pub r1_rows: u64,
    /// Total wall-clock milliseconds spent in accesses on this shard.
    pub access_ms_sum: f64,
    /// Replica-group size (1 = unreplicated).
    pub replicas: usize,
    /// Replicas currently live (primary included).
    pub live_replicas: usize,
    /// Index of the current primary within the group.
    pub primary_replica: usize,
    /// Head of the shard's delta log (last stamped LSN).
    pub last_lsn: u64,
    /// Worst last-applied-LSN delta among live followers (0 = fresh).
    pub max_replica_lag: u64,
    /// Promotions (automatic failovers + operator `promote`) so far.
    pub failovers: u64,
    /// Replica-group epoch (starts at 1; bumps once per promotion).
    pub epoch: u64,
    /// Writes rejected by epoch fencing on this shard.
    pub fenced: u64,
    /// Access-path circuit-breaker state right now.
    pub breaker: BreakerState,
    /// Accesses shed fast because the breaker was open.
    pub breaker_sheds: u64,
    /// Per-replica role and lag, for the `stats` columns.
    pub replica_status: Vec<ReplicaStatus>,
}

impl ShardStats {
    /// Buffer hit ratio on this shard's pager (0 when idle).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.buffer_hits + self.buffer_faults;
        if total == 0 {
            0.0
        } else {
            self.buffer_hits as f64 / total as f64
        }
    }

    /// Fraction of accesses that escalated to the exclusive lock.
    pub fn conflict_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.escalations as f64 / self.accesses as f64
        }
    }
}

/// `S` hash-partitioned replica groups with scatter-gather procedure
/// access and supervised failover.
///
/// All methods take `&self`: concurrency control is per shard, not
/// global. Two updates to different shards run in parallel; an access
/// shares each shard's primary lock with other accesses and only
/// excludes the updates touching the same shard.
pub struct ShardedEngine {
    slots: Vec<Arc<ShardSlot>>,
    router: Router,
    pool: WorkerPool,
    r1: String,
    key_field: usize,
    n_procs: usize,
    kind: StrategyKind,
    cross_moves: Counter,
    hedge: AtomicBool,
    supervisor: Mutex<Option<Supervisor>>,
    /// Active message-chaos injector, shared with the supervisor thread.
    chaos: Arc<Mutex<Option<Arc<ChaosInjector>>>>,
}

impl ShardedEngine {
    /// Build `shards` unreplicated engines via `build(shard_id)` —
    /// identical to [`ShardedEngine::new_replicated`] with one replica
    /// per shard.
    pub fn new<E>(
        shards: usize,
        mut build: impl FnMut(usize) -> std::result::Result<Engine, E>,
    ) -> std::result::Result<Self, E> {
        Self::new_replicated(shards, 1, |s, _r| build(s))
    }

    /// Build `shards` replica groups of `replicas` engines each via
    /// `build(shard_id, replica_idx)`. Every replica of a shard must
    /// load the **same** `R1` slice (the rows [`Router::shard_of`]
    /// assigns to that shard; use [`Router::partition_rows`]) and full
    /// copies of the inner relations; every engine must share the
    /// strategy, `R1` name, key field, and procedure list. Replica 0 of
    /// each shard starts as primary. Generic over the builder's error
    /// type so callers keep their own error domain.
    pub fn new_replicated<E>(
        shards: usize,
        replicas: usize,
        mut build: impl FnMut(usize, usize) -> std::result::Result<Engine, E>,
    ) -> std::result::Result<Self, E> {
        assert!(shards > 0, "a sharded engine needs at least one shard");
        assert!(replicas > 0, "a replica group needs at least one engine");
        let mut slots = Vec::with_capacity(shards);
        for id in 0..shards {
            let mut engines = Vec::with_capacity(replicas);
            for r in 0..replicas {
                engines.push(build(id, r)?);
            }
            slots.push(Arc::new(ShardSlot::new(id, engines)));
        }
        let (r1, key_field, n_procs, kind) = {
            let eng = slots[0].replicas[0].engine.read();
            (
                eng.options().r1.clone(),
                eng.options().r1_key_field,
                eng.procedures().len(),
                eng.strategy(),
            )
        };
        for slot in &slots {
            let primary_rows = slot.replicas[0]
                .engine
                .read()
                .catalog()
                .get(&r1)
                .map(|t| t.len());
            for rep in &slot.replicas {
                let eng = rep.engine.read();
                assert_eq!(eng.options().r1, r1, "replicas must agree on R1");
                assert_eq!(
                    eng.options().r1_key_field,
                    key_field,
                    "replicas must agree on the partition key field"
                );
                assert_eq!(
                    eng.procedures().len(),
                    n_procs,
                    "replicas must register identical procedures"
                );
                assert_eq!(eng.strategy(), kind, "replicas must share the strategy");
                assert_eq!(
                    eng.catalog().get(&r1).map(|t| t.len()),
                    primary_rows,
                    "replicas of one shard must load the same R1 slice"
                );
            }
        }
        Ok(ShardedEngine {
            pool: WorkerPool::new(shards),
            router: Router::new(shards),
            slots,
            r1,
            key_field,
            n_procs,
            kind,
            cross_moves: procdb_obs::global().counter("procdb_shard_cross_moves_total", &[]),
            hedge: AtomicBool::new(false),
            supervisor: Mutex::new(None),
            chaos: Arc::new(Mutex::new(None)),
        })
    }

    /// Install (replacing any prior plan) seeded message chaos on the
    /// delta-shipping and supervisor-heartbeat paths. Returns the live
    /// injector so callers can render the plan or read its tallies.
    pub fn install_chaos(&self, plan: ChaosPlan) -> Arc<ChaosInjector> {
        let inj = ChaosInjector::new(plan);
        *self.chaos.lock() = Some(Arc::clone(&inj));
        inj
    }

    /// Remove the chaos plan; returns the final tallies if one was
    /// active.
    pub fn chaos_off(&self) -> Option<ChaosStatus> {
        self.chaos.lock().take().map(|inj| inj.status())
    }

    /// The active chaos plan and its running tallies, if any.
    pub fn chaos_status(&self) -> Option<(ChaosPlan, ChaosStatus)> {
        self.chaos
            .lock()
            .as_ref()
            .map(|inj| (inj.plan().clone(), inj.status()))
    }

    fn current_chaos(&self) -> Option<Arc<ChaosInjector>> {
        self.chaos.lock().clone()
    }

    /// Current replica-group epoch of one shard.
    pub fn epoch_of(&self, shard: usize) -> u64 {
        self.slots[shard].epoch()
    }

    /// Install (or clear) the tap on every shard's committed delta
    /// stream. The observer is invoked synchronously at each commit
    /// point and on each epoch bump — see [`DeltaObserver`].
    pub fn set_delta_observer(&self, observer: Option<Arc<dyn DeltaObserver>>) {
        for slot in &self.slots {
            *slot.observer.write() = observer.clone();
        }
    }

    /// Writes rejected by epoch fencing, summed over shards.
    pub fn fenced_writes(&self) -> u64 {
        self.slots.iter().map(|s| s.fenced.get()).sum()
    }

    /// Circuit-breaker state of one shard's access path.
    pub fn breaker_state(&self, shard: usize) -> BreakerState {
        self.slots[shard].breaker.state()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.slots.len()
    }

    /// Replica-group size (identical on every shard; 1 = unreplicated).
    pub fn replicas(&self) -> usize {
        self.slots[0].replicas.len()
    }

    /// Number of registered procedures (identical on every shard).
    pub fn n_procs(&self) -> usize {
        self.n_procs
    }

    /// The strategy every shard runs.
    pub fn strategy(&self) -> StrategyKind {
        self.kind
    }

    /// The placement policy (stable hash of the `R1` key).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// `R1` re-keys that moved a tuple across the partition boundary.
    pub fn cross_moves(&self) -> u64 {
        self.cross_moves.get()
    }

    /// Promotions performed so far, summed over shards.
    pub fn failovers(&self) -> u64 {
        self.slots.iter().map(|s| s.failovers.get()).sum()
    }

    /// Current primary replica index of one shard.
    pub fn primary_of(&self, shard: usize) -> usize {
        self.slots[shard].primary_idx()
    }

    /// Enable/disable hedged reads: an access whose primary lock is
    /// contended serves from a live follower instead of waiting. Off by
    /// default (a follower read can run ahead of a concurrent update's
    /// fan-out, so strict read-your-writes callers should leave it off).
    pub fn set_hedged_reads(&self, on: bool) {
        self.hedge.store(on, Ordering::Relaxed);
    }

    /// Are hedged reads enabled?
    pub fn hedged_reads(&self) -> bool {
        self.hedge.load(Ordering::Relaxed)
    }

    /// Hedged reads served so far, summed over shards.
    pub fn hedged_read_count(&self) -> u64 {
        self.slots.iter().map(|s| s.hedged.get()).sum()
    }

    /// Cap every shard's delta-log retention at `cap` ops (truncating
    /// immediately). A replica further behind than the retained window
    /// resyncs by conservative full rebuild instead of replay.
    pub fn set_delta_log_cap(&self, cap: usize) {
        for slot in &self.slots {
            slot.log.lock().set_cap(cap);
        }
    }

    /// Start the supervisor thread: every `interval`, promote away from
    /// any crashed primary with a live follower. Idempotent.
    pub fn start_supervisor(&self, interval: Duration) {
        let mut sup = self.supervisor.lock();
        if sup.is_some() {
            return;
        }
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let slots = self.slots.clone();
        let chaos = Arc::clone(&self.chaos);
        let handle = std::thread::Builder::new()
            .name("procdb-replica-supervisor".into())
            .spawn(move || {
                while !flag.load(Ordering::Relaxed) {
                    for slot in &slots {
                        // A chaos-delayed heartbeat skips this slot's
                        // liveness check for the tick, widening the
                        // failover window the way a slow network would.
                        let delayed = chaos
                            .lock()
                            .as_ref()
                            .is_some_and(|ch| ch.heartbeat_delayed());
                        if delayed {
                            continue;
                        }
                        let pidx = slot.primary_idx();
                        // try_read: a held write lock means busy, not dead.
                        let crashed = slot.replicas[pidx]
                            .engine
                            .try_read()
                            .map(|eng| eng.is_crashed());
                        if crashed == Some(true) && slot.has_live_follower(pidx) {
                            failover(slot, pidx);
                        }
                    }
                    std::thread::sleep(interval);
                }
            })
            .expect("spawn replica supervisor");
        *sup = Some(Supervisor { shutdown, handle });
    }

    /// Stop (and join) the supervisor thread, if running.
    pub fn stop_supervisor(&self) {
        let sup = self.supervisor.lock().take();
        if let Some(s) = sup {
            s.shutdown.store(true, Ordering::Relaxed);
            let _ = s.handle.join();
        }
    }

    /// Run `f` against one shard's **primary** engine under the shared
    /// lock.
    pub fn with_engine<R>(&self, shard: usize, f: impl FnOnce(&Engine) -> R) -> R {
        let slot = &self.slots[shard];
        f(&slot.replicas[slot.primary_idx()].engine.read())
    }

    /// Run `f` against one shard's **primary** engine under the
    /// exclusive lock.
    pub fn with_engine_mut<R>(&self, shard: usize, f: impl FnOnce(&mut Engine) -> R) -> R {
        let slot = &self.slots[shard];
        f(&mut slot.replicas[slot.primary_idx()].engine.write())
    }

    /// Run `f` against one specific replica's engine under the shared
    /// lock (test/verification support).
    pub fn with_replica_engine<R>(
        &self,
        shard: usize,
        replica: usize,
        f: impl FnOnce(&Engine) -> R,
    ) -> R {
        f(&self.slots[shard].replicas[replica].engine.read())
    }

    /// Run `f` against one specific replica's engine under the
    /// exclusive lock (test/verification support).
    pub fn with_replica_engine_mut<R>(
        &self,
        shard: usize,
        replica: usize,
        f: impl FnOnce(&mut Engine) -> R,
    ) -> R {
        f(&mut self.slots[shard].replicas[replica].engine.write())
    }

    fn output_schema(&self, i: usize) -> Schema {
        let slot = &self.slots[0];
        let eng = slot.replicas[slot.primary_idx()].engine.read();
        eng.procedures()[i].view.output_schema(eng.catalog())
    }

    /// Merge per-shard partials deterministically: partition
    /// disjointness means concatenation is the right multiset, and
    /// sorting by the schema encoding fixes the order regardless of
    /// which shard reported first.
    fn merge(&self, schema: &Schema, partials: Vec<Vec<Tuple>>) -> Vec<Tuple> {
        let mut rows: Vec<Tuple> = partials.into_iter().flatten().collect();
        rows.sort_by_cached_key(|r| schema.encode(r));
        rows
    }

    /// Access procedure `i`: scatter to every shard on the worker pool,
    /// merge the partials, and return `(rows, priced_ms)` where the cost
    /// sums each shard's ledger delta — the work a serial engine would
    /// have done, even though wall-clock overlaps it.
    ///
    /// Each shard serves from its primary — shared lock first,
    /// escalating to exclusive only when the strategy must write. A
    /// crashed primary is promoted away from and the access **retries
    /// on the new primary** within a bounded failover window, so with
    /// live followers a dying primary costs latency, not an error. With
    /// hedged reads on, a merely *contended* primary lock routes the
    /// read to a live follower.
    pub fn access(&self, i: usize, c: &CostConstants) -> Result<(Vec<Tuple>, f64)> {
        assert!(i < self.n_procs, "procedure index out of range");
        let schema = self.output_schema(i);
        let c = *c;
        let hedge = self.hedged_reads();
        // The pool's worker threads are long-lived, so the request's
        // trace context and deadline do not follow implicitly — capture
        // them here and re-install them inside each job so every
        // shard's span links under the calling request's tree and the
        // remaining budget keeps counting down.
        let trace_ctx = procdb_obs::global().current_context();
        let deadline = procdb_obs::current_deadline();
        let jobs: Vec<AccessJob> = self
            .slots
            .iter()
            .enumerate()
            .map(|(shard_id, slot)| {
                let slot = Arc::clone(slot);
                let job: AccessJob = Box::new(move || {
                    let reg = procdb_obs::global();
                    let _ctx = trace_ctx.map(|ctx| reg.install_context(ctx));
                    let _dl = deadline.map(procdb_obs::install_deadline);
                    let mut sp = procdb_obs::span!(reg, "shard.worker", shard = shard_id);
                    if !slot.breaker.admit() {
                        sp.field("shed", 1.0);
                        return Err(StorageError::Busy { shard: shard_id });
                    }
                    let start = Instant::now();
                    let mut attempts = 0;
                    let res = loop {
                        attempts += 1;
                        if procdb_obs::deadline_expired() {
                            break Err(StorageError::Deadline { shard: shard_id });
                        }
                        let pidx = slot.primary_idx();
                        if hedge && attempts == 1 && slot.replicas[pidx].engine.try_read().is_none()
                        {
                            match hedged_read(&slot, pidx, i, &c) {
                                Ok(Some((rows, ms))) => {
                                    slot.accesses.inc();
                                    slot.access_ms.observe(start.elapsed().as_secs_f64() * 1e3);
                                    sp.field("role", pidx as f64);
                                    sp.field("hedged", 1.0);
                                    break Ok((rows, ms));
                                }
                                Ok(None) => {}
                                Err(e) => break Err(e),
                            }
                        }
                        match serve_on(&slot.replicas[pidx], shard_id, i, &c) {
                            Ok((rows, ms, escalated)) => {
                                if escalated {
                                    slot.escalations.inc();
                                }
                                slot.accesses.inc();
                                slot.access_ms.observe(start.elapsed().as_secs_f64() * 1e3);
                                sp.field("role", pidx as f64);
                                if escalated {
                                    sp.field("escalated", 1.0);
                                }
                                if attempts > 1 {
                                    sp.field("failovers", (attempts - 1) as f64);
                                }
                                break Ok((rows, ms));
                            }
                            Err(e) => {
                                let crashed = slot.replicas[pidx].engine.read().is_crashed();
                                if crashed
                                    && attempts <= slot.replicas.len()
                                    && start.elapsed() < FAILOVER_WINDOW
                                    && failover(&slot, pidx).is_some()
                                {
                                    continue; // retry on the promoted follower
                                }
                                break Err(e);
                            }
                        }
                    };
                    // Feed the breaker: a served access closes it, a
                    // failed one counts toward (or confirms) the trip.
                    match &res {
                        Ok(_) => slot.breaker.on_success(),
                        Err(_) => slot.breaker.on_failure(),
                    }
                    res
                });
                job
            })
            .collect();
        let mut partials = Vec::with_capacity(self.slots.len());
        let mut total_ms = 0.0;
        for out in self.pool.scatter(jobs) {
            let (rows, ms) = out?;
            partials.push(rows);
            total_ms += ms;
        }
        Ok((self.merge(&schema, partials), total_ms))
    }

    /// Ship `delta` (already applied on the primary and committed to
    /// the log) to every live follower of `slot`, each ship running the
    /// installed chaos plan's gauntlet: a *dropped* ship kills the link
    /// — the follower is marked down at an exact op boundary (its LSN
    /// stays replayable by resync, so an acked write is never lost to a
    /// later promotion: down followers are not promotion candidates); a
    /// *delayed* ship sleeps; a *held* ship parks in the follower's
    /// inbox and is delivered in LSN order by a later drain; a
    /// *duplicated* ship is delivered twice and suppressed by the
    /// follower's LSN guard. A follower whose apply fails *crashed* is
    /// dropped from the group and marked suspect; a follower whose
    /// maintenance merely faulted keeps serving — its base effect is
    /// durable and its derived state is dirty-marked, self-healing on
    /// first access exactly like a standalone engine.
    ///
    /// Acks echo each follower's epoch watermark; one stamped newer
    /// than the ship means this primary was superseded between its
    /// commit point and the ship (the op is in the shared log, so the
    /// promoted follower replays it — but the fencing is counted).
    fn fan_out(&self, slot: &ShardSlot, delta: &ShippedDelta, c: &CostConstants) -> f64 {
        let chaos = self.current_chaos();
        let pidx = slot.primary_idx();
        let mut ms = 0.0;
        for rep in &slot.replicas {
            if rep.idx == pidx || !rep.is_alive() {
                continue;
            }
            let fate = chaos
                .as_deref()
                .map(|ch| ch.decide_ship())
                .unwrap_or(ShipFate::CLEAN);
            if fate.drop {
                // Dead link at an op boundary: the follower leaves the
                // group with an exact LSN and rejoins by replay.
                rep.mark_down();
                slot.replica_drops.inc();
                continue;
            }
            if let Some(d) = fate.delay {
                std::thread::sleep(d);
            }
            if fate.hold {
                ms += deliver(slot, rep, delta, c, true);
                continue;
            }
            let (m, ack) = deliver_acked(slot, rep, delta, c);
            ms += m;
            if let Some(ack) = ack {
                if ack.epoch > delta.epoch {
                    slot.fenced.inc();
                }
            }
            if fate.duplicate && rep.is_alive() {
                // Retransmit: the follower's LSN guard suppresses it.
                ms += deliver(slot, rep, delta, c, false);
            }
        }
        ms
    }

    /// Apply one routed mutation to a shard's replica group: primary
    /// first (with promote-and-retry if the primary turns out crashed),
    /// then log-stamp and fan out to live followers. Returns
    /// `(modified, priced_ms)`; a maintenance fault on a live primary
    /// still ships the (durable) base effect to followers before the
    /// error surfaces.
    fn replicated_apply(
        &self,
        shard: usize,
        op: DeltaOp,
        c: &CostConstants,
    ) -> Result<(usize, f64)> {
        let slot = &self.slots[shard];
        let _sp = procdb_obs::span!(procdb_obs::global(), "shard.apply", shard = shard);
        let _m = slot.mutation.lock();
        // Chaos fence trap: models a supervisor whose promotion verdict
        // lands mid-commit — the freshest live follower is promoted for
        // real (a genuine epoch bump; the now-stale primary is dropped
        // from the group at an exact op boundary) and this op is
        // rejected with the typed fence *before* it touches any state,
        // so the retry lands cleanly on the new primary.
        if let Some(ch) = self.current_chaos() {
            if ch.fence_fires() {
                let pidx = slot.primary_idx();
                if slot.has_live_follower(pidx) && failover(slot, pidx).is_some() {
                    ch.note_fenced();
                    slot.fenced.inc();
                    return Err(StorageError::Fenced {
                        shard,
                        epoch: slot.epoch(),
                    });
                }
            }
        }
        let mut total_ms = 0.0;
        let mut attempts = 0;
        let (n, lsn, epoch, maint_err) = loop {
            attempts += 1;
            let pidx = slot.primary_idx();
            let epoch0 = slot.epoch();
            let prim = &slot.replicas[pidx];
            let mut eng = prim.engine.write();
            let before = eng.ledger().snapshot();
            let res = eng.apply_delta_op(&op);
            total_ms += eng.ledger().snapshot().since(&before).priced(c);
            match res {
                Ok(n) => {
                    // Commit-point fence: if a concurrent promotion moved
                    // the epoch (or the primary pointer) while we were
                    // applying, our apply is an unstamped orphan — the
                    // group never logged it. Self-demote into the
                    // conservative resync path (which discards it) and
                    // surface the typed fence instead of acking a write
                    // the new primary will never have.
                    if slot.epoch() != epoch0 || slot.primary_idx() != pidx {
                        drop(eng);
                        prim.mark_suspect();
                        slot.fenced.inc();
                        return Err(StorageError::Fenced {
                            shard,
                            epoch: epoch0,
                        });
                    }
                    let lsn = slot.log.lock().append(op.clone(), epoch0);
                    eng.note_applied_lsn(lsn);
                    prim.applied.store(lsn, Ordering::Relaxed);
                    break (n, lsn, epoch0, None);
                }
                Err(e) => {
                    if eng.is_crashed() {
                        drop(eng);
                        // Died mid-apply: its base effect may have landed
                        // without the LSN being noted — ambiguous position,
                        // whoever ends up promoting past it.
                        prim.mark_suspect();
                        if attempts <= slot.replicas.len() && failover(slot, pidx).is_some() {
                            continue; // retry the op on the promoted follower
                        }
                        return Err(e);
                    }
                    if slot.epoch() != epoch0 || slot.primary_idx() != pidx {
                        // Superseded mid-fault: do not stamp the log
                        // under a stale epoch.
                        drop(eng);
                        prim.mark_suspect();
                        slot.fenced.inc();
                        return Err(StorageError::Fenced {
                            shard,
                            epoch: epoch0,
                        });
                    }
                    // Maintenance fault on a live primary: the uncharged
                    // base effect is durable and the dirty marks are set,
                    // so the delta still ships before the error surfaces.
                    let lsn = slot.log.lock().append(op.clone(), epoch0);
                    eng.note_applied_lsn(lsn);
                    prim.applied.store(lsn, Ordering::Relaxed);
                    break (0, lsn, epoch0, Some(e));
                }
            }
        };
        slot.updates.inc();
        // Commit point: the op is applied and log-stamped. Tap the
        // stream before fan-out so a front cache is invalidated before
        // any client can observe this write's acknowledgement.
        slot.notify_delta(epoch, lsn, &op);
        total_ms += self.fan_out(slot, &ShippedDelta::new(epoch, lsn, op), c);
        match maint_err {
            Some(e) => Err(e),
            None => Ok((n, total_ms)),
        }
    }

    /// The delete-take half of a cross-shard move, replicated: the
    /// primary takes the rows, the followers see the same keyed delete.
    /// The taken rows are returned **even when maintenance faults** —
    /// the base deletion is durable, so the move must still complete on
    /// the destination or the tuple would be lost.
    fn replicated_delete_take(
        &self,
        shard: usize,
        keys: &[i64],
        c: &CostConstants,
    ) -> (Vec<Tuple>, f64, Result<usize>) {
        let slot = &self.slots[shard];
        let _m = slot.mutation.lock();
        let mut total_ms = 0.0;
        let mut attempts = 0;
        loop {
            attempts += 1;
            let pidx = slot.primary_idx();
            let prim = &slot.replicas[pidx];
            let mut eng = prim.engine.write();
            let before = eng.ledger().snapshot();
            let (taken, res) = eng.apply_delete_take(keys);
            total_ms += eng.ledger().snapshot().since(&before).priced(c);
            let crashed = eng.is_crashed();
            match res {
                Err(e) if crashed => {
                    drop(eng);
                    // The ex-primary's base delete may or may not have
                    // landed — suspect either way.
                    prim.mark_suspect();
                    if attempts <= slot.replicas.len() && failover(slot, pidx).is_some() {
                        // The promoted follower has not seen this op —
                        // retry there.
                        continue;
                    }
                    // No follower to fail over to: the rows (if any) are
                    // gone from this engine; surface them so the caller
                    // can still complete the move.
                    slot.updates.inc();
                    return (taken, total_ms, Err(e));
                }
                res => {
                    // No fence trap here: the delete-take is half of a
                    // cross-shard move, and rejecting it after the take
                    // (or fencing the other half) could strand the row.
                    let epoch = slot.epoch();
                    let lsn = slot
                        .log
                        .lock()
                        .append(DeltaOp::Delete(keys.to_vec()), epoch);
                    eng.note_applied_lsn(lsn);
                    prim.applied.store(lsn, Ordering::Relaxed);
                    drop(eng);
                    slot.updates.inc();
                    let delta = ShippedDelta::new(epoch, lsn, DeltaOp::Delete(keys.to_vec()));
                    slot.notify_delta(epoch, lsn, &delta.op);
                    total_ms += self.fan_out(slot, &delta, c);
                    return (taken, total_ms, res);
                }
            }
        }
    }

    /// Apply one `R1` update transaction, routing each `(victim,
    /// new_key)` re-key to the shard owning the victim. Pairs apply in
    /// order, so a later pair observes an earlier pair's effect exactly
    /// as in a single engine. Returns `(tuples_modified, priced_ms)`.
    pub fn apply_update(
        &self,
        modifications: &[(i64, i64)],
        c: &CostConstants,
    ) -> Result<(usize, f64)> {
        let mut modified = 0;
        let mut total_ms = 0.0;
        for &(victim, new_key) in modifications {
            let src = self.router.shard_of(victim);
            let dst = self.router.shard_of(new_key);
            if src == dst {
                let (n, ms) =
                    self.replicated_apply(src, DeltaOp::Rekey(vec![(victim, new_key)]), c)?;
                modified += n;
                total_ms += ms;
            } else {
                // Cross-shard move. One group's mutation lock at a time:
                // delete-take on the source, then insert on the
                // destination. The destination insert happens even when
                // the source's maintenance faulted — the base delete is
                // durable, so skipping the insert would lose the row.
                let (taken, ms, take_res) = self.replicated_delete_take(src, &[victim], c);
                total_ms += ms;
                let mut maint_err = take_res.err();
                if let Some(mut row) = taken.into_iter().next() {
                    row[self.key_field] = Value::Int(new_key);
                    // The source delete is durable, so the destination
                    // insert must land or the row is lost. A fence
                    // rejects the insert *before* it touches state, so
                    // retrying against the freshly promoted primary is
                    // always safe; each fence drops a replica from the
                    // destination group, so the retries are bounded.
                    let mut res = self.replicated_apply(dst, DeltaOp::Insert(vec![row.clone()]), c);
                    while matches!(res, Err(StorageError::Fenced { .. })) {
                        res = self.replicated_apply(dst, DeltaOp::Insert(vec![row.clone()]), c);
                    }
                    match res {
                        Ok((_, ms)) => total_ms += ms,
                        Err(e) => maint_err = Some(maint_err.unwrap_or(e)),
                    }
                    self.cross_moves.inc();
                    modified += 1;
                }
                if let Some(e) = maint_err {
                    return Err(e);
                }
            }
        }
        Ok((modified, total_ms))
    }

    /// Insert new `R1` tuples, each on the shard owning its key.
    pub fn apply_insert(&self, rows: &[Tuple], c: &CostConstants) -> Result<(usize, f64)> {
        let parts = self.router.partition_rows(rows, self.key_field);
        let mut inserted = 0;
        let mut total_ms = 0.0;
        for (s, part) in parts.into_iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            let (n, ms) = self.replicated_apply(s, DeltaOp::Insert(part), c)?;
            inserted += n;
            total_ms += ms;
        }
        Ok((inserted, total_ms))
    }

    /// Delete (up to) one `R1` tuple per listed key, each on its owning
    /// shard. Duplicates of a key all live on one shard in insertion
    /// order, so the tuple removed matches the single-engine choice.
    pub fn apply_delete(&self, keys: &[i64], c: &CostConstants) -> Result<(usize, f64)> {
        let mut per_shard: Vec<Vec<i64>> = vec![Vec::new(); self.slots.len()];
        for &k in keys {
            per_shard[self.router.shard_of(k)].push(k);
        }
        let mut deleted = 0;
        let mut total_ms = 0.0;
        for (s, part) in per_shard.into_iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            let (n, ms) = self.replicated_apply(s, DeltaOp::Delete(part), c)?;
            deleted += n;
            total_ms += ms;
        }
        Ok((deleted, total_ms))
    }

    /// Update any relation by name. `R1` routes through
    /// [`ShardedEngine::apply_update`]; an inner relation is replicated,
    /// so the transaction broadcasts to every shard group and the
    /// modified count (identical on each copy) is reported once.
    pub fn apply_update_to(
        &self,
        relation: &str,
        modifications: &[(i64, i64)],
        c: &CostConstants,
    ) -> Result<(usize, f64)> {
        if relation == self.r1 {
            return self.apply_update(modifications, c);
        }
        let mut modified = 0;
        let mut total_ms = 0.0;
        for s in 0..self.slots.len() {
            let op = DeltaOp::RekeyIn {
                relation: relation.to_string(),
                mods: modifications.to_vec(),
            };
            let (n, ms) = self.replicated_apply(s, op, c)?;
            total_ms += ms;
            if s == 0 {
                modified = n;
            }
        }
        Ok((modified, total_ms))
    }

    /// Crash one shard's **primary** (or every shard's, with `None`).
    /// When the group has a live follower, the freshest one is promoted
    /// immediately — the supervised-failover path for an operator-
    /// injected crash — and the service keeps answering; the crashed
    /// ex-primary rejoins on [`ShardedEngine::recover`].
    pub fn crash(&self, shard: Option<usize>) {
        let ids: Vec<usize> = match shard {
            Some(s) => vec![s],
            None => (0..self.slots.len()).collect(),
        };
        for s in ids {
            let slot = &self.slots[s];
            // Serialize with in-flight commits: a promotion between a
            // commit's log stamp and its fan-out would leave the new
            // primary refusing (as stale) a ship the log already holds.
            let _m = slot.mutation.lock();
            let pidx = slot.primary_idx();
            slot.replicas[pidx].engine.write().crash();
            if slot.has_live_follower(pidx) {
                failover(slot, pidx);
            }
        }
    }

    /// Operator promotion: make the freshest live follower of `shard`
    /// the primary (a forced failover drill). The demoted ex-primary
    /// stays a live follower when healthy; a crashed one is marked
    /// suspect for resync. Errors when no live follower exists.
    ///
    /// Serialized with the supervisor and with inline failover on the
    /// group epoch: all promoters go through the same compare-exchange,
    /// so a `promote` racing a supervisor tick over the same dead
    /// primary yields exactly one promotion and one epoch bump — the
    /// loser observes the winner's result and reports it.
    pub fn promote(&self, shard: usize) -> std::result::Result<usize, String> {
        assert!(shard < self.slots.len(), "shard index out of range");
        let slot = &self.slots[shard];
        let _m = slot.mutation.lock();
        let pidx = slot.primary_idx();
        let Some(best) = slot
            .replicas
            .iter()
            .filter(|r| r.idx != pidx && r.is_alive())
            .max_by_key(|r| r.applied_lsn())
        else {
            return Err(format!("shard {shard} has no live follower to promote"));
        };
        let old_crashed = slot.replicas[pidx].engine.read().is_crashed();
        if promote_cas(slot, pidx, best.idx) {
            if old_crashed {
                // An operator crash is an op-boundary crash: position exact,
                // so the drop stays replayable (a mid-apply death was already
                // marked suspect by the mutation path that observed it).
                slot.replicas[pidx].mark_down();
            }
            Ok(best.idx)
        } else {
            // A concurrent failover won the swap first — its epoch bump
            // is the only one; report whoever it promoted.
            Ok(slot.primary_idx())
        }
    }

    /// Recover one shard's replica group (or every group, with `None`):
    /// recover each crashed engine, then resync every non-primary
    /// replica (replay or conservative rebuild) and revive it. Returns
    /// one outcome per covered shard — the primary's when it actually
    /// recovered, else the first replica that did, else `NotCrashed`.
    pub fn recover(&self, shard: Option<usize>) -> Vec<(usize, RecoveryOutcome)> {
        let ids: Vec<usize> = match shard {
            Some(s) => vec![s],
            None => (0..self.slots.len()).collect(),
        };
        ids.into_iter()
            .map(|s| (s, self.recover_group(s)))
            .collect()
    }

    fn recover_group(&self, s: usize) -> RecoveryOutcome {
        let slot = &self.slots[s];
        let _m = slot.mutation.lock(); // freeze the delta stream during resync
        let pidx = slot.primary_idx();
        let prim = &slot.replicas[pidx];
        let mut outcome = prim.engine.write().recover();
        // A recovered primary is authoritative for its shard again — it
        // may have been dropped or marked suspect when every follower
        // was also dead and no promotion was possible.
        let prim_was_suspect = prim.needs_full_resync.load(Ordering::Relaxed);
        prim.applied
            .store(prim.engine.read().applied_lsn(), Ordering::Relaxed);
        prim.needs_full_resync.store(false, Ordering::Relaxed);
        prim.note_epoch(slot.epoch());
        prim.alive.store(true, Ordering::Relaxed);
        for rep in &slot.replicas {
            if rep.idx == pidx {
                continue;
            }
            let o = rep.engine.write().recover();
            if o.is_recovered() && !outcome.is_recovered() {
                outcome = o;
            }
            if prim_was_suspect {
                // A suspect primary died mid-apply: its durable base may
                // hold an op the log never stamped, so replay cannot
                // reconstruct it — every follower must snapshot instead.
                rep.needs_full_resync.store(true, Ordering::Relaxed);
            }
            // A replica whose resync fails stays down (visible in stats);
            // conservative by construction.
            let _ = self.resync_replica(slot, rep);
        }
        outcome
    }

    /// Resync every non-primary replica of `shard` (or of every shard,
    /// with `None`) that is down or lagging: recover its engine if
    /// crashed, then replay the delta-log tail past its last applied
    /// LSN — or conservatively reinstall the primary's `R1` snapshot
    /// (full derived-state invalidation) when the log has been
    /// truncated past its position or its stream position is ambiguous.
    /// Returns one report per replica resynced.
    pub fn resync(&self, shard: Option<usize>) -> Result<Vec<ResyncReport>> {
        let ids: Vec<usize> = match shard {
            Some(s) => vec![s],
            None => (0..self.slots.len()).collect(),
        };
        let mut reports = Vec::new();
        for s in ids {
            let slot = &self.slots[s];
            let _m = slot.mutation.lock();
            let pidx = slot.primary_idx();
            let target = slot.log.lock().last_lsn();
            for rep in &slot.replicas {
                if rep.idx == pidx {
                    continue;
                }
                let needs = !rep.is_alive() || rep.applied_lsn() < target;
                if !needs {
                    continue;
                }
                {
                    let mut eng = rep.engine.write();
                    let _ = eng.recover();
                }
                reports.push(self.resync_replica(slot, rep)?);
            }
        }
        Ok(reports)
    }

    /// Catch one replica up to the shard's log head. Caller holds the
    /// shard's mutation lock and has already recovered the engine.
    fn resync_replica(&self, slot: &ShardSlot, rep: &Arc<Replica>) -> Result<ResyncReport> {
        let target = slot.log.lock().last_lsn();
        // Parked chaos deliveries are superseded by the log replay below
        // (everything parked is logged), and a fenced replica rejoining
        // the group must adopt the current epoch.
        rep.inbox.lock().unwrap_or_else(|e| e.into_inner()).clear();
        let mut replayed = 0usize;
        let mut full = rep.needs_full_resync.load(Ordering::Relaxed);
        if !full {
            let from = rep.engine.read().applied_lsn();
            match slot.log.lock().tail_after(from) {
                Some(tail) => {
                    let mut eng = rep.engine.write();
                    for d in &tail {
                        let res = eng.apply_delta_op(&d.op);
                        if res.is_err() && eng.is_crashed() {
                            // Died mid-replay: position ambiguous again.
                            let _ = eng.recover();
                            full = true;
                            break;
                        }
                        // A plain maintenance fault leaves the base effect
                        // durable and the derived state dirty-marked —
                        // the replay position is still exact.
                        eng.note_applied_lsn(d.lsn);
                        replayed += 1;
                    }
                }
                None => full = true, // truncated past this replica
            }
        }
        if full {
            let snapshot = {
                let prim = &slot.replicas[slot.primary_idx()];
                let eng = prim.engine.read();
                let pager = eng.pager().clone();
                let was = pager.is_charging();
                pager.set_charging(false);
                let rows = eng
                    .catalog()
                    .get(&self.r1)
                    .expect("R1 exists on shards")
                    .scan_all();
                pager.set_charging(was);
                rows?
            };
            let mut eng = rep.engine.write();
            eng.install_r1_snapshot(&snapshot)?;
            eng.note_applied_lsn(target);
            slot.resync_full.inc();
        } else {
            slot.resync_replayed.add(replayed as u64);
        }
        rep.applied
            .store(rep.engine.read().applied_lsn(), Ordering::Relaxed);
        rep.needs_full_resync.store(false, Ordering::Relaxed);
        rep.note_epoch(slot.epoch());
        rep.alive.store(true, Ordering::Relaxed);
        Ok(ResyncReport {
            shard: slot.id,
            replica: rep.idx,
            replayed,
            full_rebuild: full,
        })
    }

    /// Warm every replica's caches (uncharged), so first measured
    /// accesses are steady-state — the sharded analogue of
    /// [`Engine::warm_up`].
    pub fn warm_up(&self) -> Result<()> {
        for slot in &self.slots {
            for rep in &slot.replicas {
                rep.engine.write().warm_up()?;
            }
        }
        Ok(())
    }

    /// Reference answer for procedure `i`: every shard primary's
    /// uncharged fresh recompute, merged. Test/verification support.
    pub fn expected_rows(&self, i: usize) -> Result<Vec<Tuple>> {
        let schema = self.output_schema(i);
        let mut partials = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            partials.push(
                slot.replicas[slot.primary_idx()]
                    .engine
                    .read()
                    .expected_rows(i)?,
            );
        }
        Ok(self.merge(&schema, partials))
    }

    /// Normalize rows for multiset comparison (encode + sort), using the
    /// same schema encoding as the single-engine oracle.
    pub fn normalize(&self, i: usize, rows: &[Tuple]) -> Vec<Vec<u8>> {
        let slot = &self.slots[0];
        let eng = slot.replicas[slot.primary_idx()].engine.read();
        eng.normalize(i, rows)
    }

    /// All `R1` tuples across shard primaries, uncharged, in a
    /// deterministic (schema-encoded) order. Used to resync a session's
    /// schema mirror after updates.
    pub fn scan_r1(&self) -> Result<Vec<Tuple>> {
        let mut rows: Vec<Tuple> = Vec::new();
        let mut schema: Option<Schema> = None;
        for slot in &self.slots {
            let eng = slot.replicas[slot.primary_idx()].engine.read();
            let pager = eng.pager().clone();
            let was = pager.is_charging();
            pager.set_charging(false);
            let table = eng.catalog().get(&self.r1).expect("R1 exists on shards");
            if schema.is_none() {
                schema = Some(table.schema().clone());
            }
            let scanned = table.scan_all();
            pager.set_charging(was);
            rows.extend(scanned?);
        }
        let schema = schema.expect("at least one shard");
        rows.sort_by_cached_key(|r| schema.encode(r));
        Ok(rows)
    }

    /// Point-in-time per-shard summaries (allocation-light on the hot
    /// path: counters are relaxed atomics, the primary engine is
    /// read-locked only to read sizes).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.slots
            .iter()
            .map(|slot| {
                let pidx = slot.primary_idx();
                let last_lsn = slot.log.lock().last_lsn();
                let replica_status: Vec<ReplicaStatus> = slot
                    .replicas
                    .iter()
                    .map(|r| {
                        let role = if r.idx == pidx {
                            ReplicaRole::Primary
                        } else if r.is_alive() {
                            ReplicaRole::Follower
                        } else {
                            ReplicaRole::Down
                        };
                        let applied = r.applied_lsn();
                        ReplicaStatus {
                            replica: r.idx,
                            role,
                            applied_lsn: applied,
                            lag: last_lsn.saturating_sub(applied),
                        }
                    })
                    .collect();
                let max_replica_lag = replica_status
                    .iter()
                    .filter(|st| st.role == ReplicaRole::Follower)
                    .map(|st| st.lag)
                    .max()
                    .unwrap_or(0);
                let live_replicas = slot.replicas.iter().filter(|r| r.is_alive()).count();
                let eng = slot.replicas[pidx].engine.read();
                let (hits, faults) = eng.pager().buffer_stats();
                ShardStats {
                    shard: slot.id,
                    accesses: slot.accesses.get(),
                    updates: slot.updates.get(),
                    escalations: slot.escalations.get(),
                    buffer_hits: hits,
                    buffer_faults: faults,
                    crash_epoch: eng.crash_epoch(),
                    rebuilds_pending: eng.rebuilds_pending(),
                    valid_fraction: eng.valid_fraction(),
                    r1_rows: eng
                        .catalog()
                        .get(&self.r1)
                        .map(|t| t.len())
                        .unwrap_or_default(),
                    access_ms_sum: slot.access_ms.sum(),
                    replicas: slot.replicas.len(),
                    live_replicas,
                    primary_replica: pidx,
                    last_lsn,
                    max_replica_lag,
                    failovers: slot.failovers.get(),
                    epoch: slot.epoch(),
                    fenced: slot.fenced.get(),
                    breaker: slot.breaker.state(),
                    breaker_sheds: slot.breaker.shed_count(),
                    replica_status,
                }
            })
            .collect()
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        self.stop_supervisor();
    }
}
