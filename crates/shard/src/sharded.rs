//! The partitioned engine: `S` independent [`Engine`]s behind per-shard
//! readers-writer locks, a [`Router`] that places every `R1` tuple, and
//! a [`WorkerPool`] that fans procedure accesses out across shards.
//!
//! ## Routing
//!
//! * **Accesses** scatter to every shard: each shard computes its
//!   partial answer over its `R1` slice (shared lock; escalated to
//!   exclusive only when the shard's strategy must write — refill a
//!   cache, fold maintenance, rebuild after a crash), and the partials
//!   merge by sorting schema-encoded rows. Partition disjointness makes
//!   the merged multiset exactly the single-engine answer.
//! * **Updates** route to the shard owning the victim key. A re-key
//!   whose new key hashes elsewhere becomes a *cross-shard move*:
//!   delete-take on the source, rewrite the key, insert on the
//!   destination — never holding two shard locks at once, so shard
//!   locks cannot deadlock.
//! * **Inner-relation updates** (`R2`/`R3` are replicated) broadcast to
//!   every shard.
//!
//! ## Recovery
//!
//! [`ShardedEngine::crash`] and [`ShardedEngine::recover`] take an
//! optional shard id: one shard can crash and recover while the others
//! keep serving. An unrecovered shard still answers accesses — its
//! strategy machinery rebuilds derived state on first access exactly as
//! a standalone engine does — so a single-shard failure degrades
//! latency instead of killing the service.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;
use procdb_core::{Engine, RecoveryReport, StrategyKind};
use procdb_obs::{Counter, Histogram};
use procdb_query::{Schema, Tuple, Value};
use procdb_storage::{CostConstants, Result};

use crate::pool::WorkerPool;
use crate::router::Router;

/// A boxed per-shard access task handed to the [`WorkerPool`]: runs one
/// shard's share of a scatter and returns `(partial rows, priced ms)`.
type AccessJob = Box<dyn FnOnce() -> Result<(Vec<Tuple>, f64)> + Send>;

/// One shard: an engine behind its own readers-writer lock, plus the
/// shard-labeled service metrics (the engine's own metric series already
/// carry the `shard` label via `EngineOptions::shard`).
struct ShardSlot {
    id: usize,
    engine: RwLock<Engine>,
    accesses: Counter,
    updates: Counter,
    escalations: Counter,
    access_ms: Histogram,
}

impl ShardSlot {
    fn new(id: usize, engine: Engine) -> ShardSlot {
        let reg = procdb_obs::global();
        let id_str = id.to_string();
        let labels: &[(&str, &str)] = &[("shard", id_str.as_str())];
        ShardSlot {
            id,
            engine: RwLock::new(engine),
            accesses: reg.counter("procdb_shard_accesses_total", labels),
            updates: reg.counter("procdb_shard_updates_total", labels),
            escalations: reg.counter("procdb_shard_escalations_total", labels),
            access_ms: reg.histogram("procdb_shard_access_ms", labels),
        }
    }
}

/// A point-in-time summary of one shard, for `stats`/`metrics`
/// reporting and the per-shard bench section.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard id (dense, `0..shards`).
    pub shard: usize,
    /// Procedure accesses this shard served (partials count once each).
    pub accesses: u64,
    /// Update transactions routed to (or broadcast through) this shard.
    pub updates: u64,
    /// Accesses that could not finish under the shared lock and
    /// re-ran under the exclusive one (lock-conflict proxy).
    pub escalations: u64,
    /// Buffer-pool hits on this shard's private pager.
    pub buffer_hits: u64,
    /// Buffer-pool faults (misses) on this shard's private pager.
    pub buffer_faults: u64,
    /// Crashes simulated on this shard so far.
    pub crash_epoch: u64,
    /// Derived-state rebuilds still deferred to first access.
    pub rebuilds_pending: usize,
    /// Fraction of caches currently valid (CI only).
    pub valid_fraction: Option<f64>,
    /// `R1` tuples this shard owns.
    pub r1_rows: u64,
    /// Total wall-clock milliseconds spent in accesses on this shard.
    pub access_ms_sum: f64,
}

impl ShardStats {
    /// Buffer hit ratio on this shard's pager (0 when idle).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.buffer_hits + self.buffer_faults;
        if total == 0 {
            0.0
        } else {
            self.buffer_hits as f64 / total as f64
        }
    }

    /// Fraction of accesses that escalated to the exclusive lock.
    pub fn conflict_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.escalations as f64 / self.accesses as f64
        }
    }
}

/// `S` hash-partitioned engines with scatter-gather procedure access.
///
/// All methods take `&self`: concurrency control is per shard, not
/// global. Two updates to different shards run in parallel; an access
/// shares each shard's lock with other accesses and only excludes the
/// updates touching the same shard.
pub struct ShardedEngine {
    slots: Vec<Arc<ShardSlot>>,
    router: Router,
    pool: WorkerPool,
    r1: String,
    key_field: usize,
    n_procs: usize,
    kind: StrategyKind,
    cross_moves: Counter,
}

impl ShardedEngine {
    /// Build `shards` engines via `build(shard_id)` — the builder loads
    /// each engine's catalog with exactly the `R1` rows
    /// [`Router::shard_of`] assigns to that shard (use
    /// [`Router::partition_rows`]) and full replicas of the inner
    /// relations. Every engine must share the strategy, `R1` name, key
    /// field, and procedure list; this is asserted, not trusted.
    /// Generic over the builder's error type so callers keep their own
    /// error domain.
    pub fn new<E>(
        shards: usize,
        mut build: impl FnMut(usize) -> std::result::Result<Engine, E>,
    ) -> std::result::Result<Self, E> {
        assert!(shards > 0, "a sharded engine needs at least one shard");
        let mut slots = Vec::with_capacity(shards);
        for id in 0..shards {
            slots.push(Arc::new(ShardSlot::new(id, build(id)?)));
        }
        let (r1, key_field, n_procs, kind) = {
            let eng = slots[0].engine.read();
            (
                eng.options().r1.clone(),
                eng.options().r1_key_field,
                eng.procedures().len(),
                eng.strategy(),
            )
        };
        for slot in &slots[1..] {
            let eng = slot.engine.read();
            assert_eq!(eng.options().r1, r1, "shards must agree on R1");
            assert_eq!(
                eng.options().r1_key_field,
                key_field,
                "shards must agree on the partition key field"
            );
            assert_eq!(
                eng.procedures().len(),
                n_procs,
                "shards must register identical procedures"
            );
            assert_eq!(eng.strategy(), kind, "shards must share the strategy");
        }
        Ok(ShardedEngine {
            pool: WorkerPool::new(shards),
            router: Router::new(shards),
            slots,
            r1,
            key_field,
            n_procs,
            kind,
            cross_moves: procdb_obs::global().counter("procdb_shard_cross_moves_total", &[]),
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.slots.len()
    }

    /// Number of registered procedures (identical on every shard).
    pub fn n_procs(&self) -> usize {
        self.n_procs
    }

    /// The strategy every shard runs.
    pub fn strategy(&self) -> StrategyKind {
        self.kind
    }

    /// The placement policy (stable hash of the `R1` key).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// `R1` re-keys that moved a tuple across the partition boundary.
    pub fn cross_moves(&self) -> u64 {
        self.cross_moves.get()
    }

    /// Run `f` against one shard's engine under the shared lock.
    pub fn with_engine<R>(&self, shard: usize, f: impl FnOnce(&Engine) -> R) -> R {
        f(&self.slots[shard].engine.read())
    }

    /// Run `f` against one shard's engine under the exclusive lock.
    pub fn with_engine_mut<R>(&self, shard: usize, f: impl FnOnce(&mut Engine) -> R) -> R {
        f(&mut self.slots[shard].engine.write())
    }

    fn output_schema(&self, i: usize) -> Schema {
        let eng = self.slots[0].engine.read();
        eng.procedures()[i].view.output_schema(eng.catalog())
    }

    /// Merge per-shard partials deterministically: partition
    /// disjointness means concatenation is the right multiset, and
    /// sorting by the schema encoding fixes the order regardless of
    /// which shard reported first.
    fn merge(&self, schema: &Schema, partials: Vec<Vec<Tuple>>) -> Vec<Tuple> {
        let mut rows: Vec<Tuple> = partials.into_iter().flatten().collect();
        rows.sort_by_cached_key(|r| schema.encode(r));
        rows
    }

    /// Access procedure `i`: scatter to every shard on the worker pool,
    /// merge the partials, and return `(rows, priced_ms)` where the cost
    /// sums each shard's ledger delta — the work a serial engine would
    /// have done, even though wall-clock overlaps it.
    ///
    /// Each shard first tries [`Engine::access_shared`] under the shared
    /// lock; only a shard whose strategy must write (cache refill,
    /// deferred maintenance, post-crash rebuild) escalates to its
    /// exclusive lock, and only that shard serializes against updates.
    pub fn access(&self, i: usize, c: &CostConstants) -> Result<(Vec<Tuple>, f64)> {
        assert!(i < self.n_procs, "procedure index out of range");
        let schema = self.output_schema(i);
        let c = *c;
        let jobs: Vec<AccessJob> = self
            .slots
            .iter()
            .map(|slot| {
                let slot = Arc::clone(slot);
                let job: AccessJob = Box::new(move || {
                    let start = Instant::now();
                    {
                        let eng = slot.engine.read();
                        let before = eng.ledger().snapshot();
                        if let Some(rows) = eng.access_shared(i)? {
                            let ms = eng.ledger().snapshot().since(&before).priced(&c);
                            slot.accesses.inc();
                            slot.access_ms.observe(start.elapsed().as_secs_f64() * 1e3);
                            return Ok((rows, ms));
                        }
                    }
                    // This shard must write to answer; take its
                    // exclusive lock and re-run.
                    slot.escalations.inc();
                    let mut eng = slot.engine.write();
                    let before = eng.ledger().snapshot();
                    let rows = eng.access(i)?;
                    let ms = eng.ledger().snapshot().since(&before).priced(&c);
                    slot.accesses.inc();
                    slot.access_ms.observe(start.elapsed().as_secs_f64() * 1e3);
                    Ok((rows, ms))
                });
                job
            })
            .collect();
        let mut partials = Vec::with_capacity(self.slots.len());
        let mut total_ms = 0.0;
        for out in self.pool.scatter(jobs) {
            let (rows, ms) = out?;
            partials.push(rows);
            total_ms += ms;
        }
        Ok((self.merge(&schema, partials), total_ms))
    }

    /// Apply one `R1` update transaction, routing each `(victim,
    /// new_key)` re-key to the shard owning the victim. Pairs apply in
    /// order, so a later pair observes an earlier pair's effect exactly
    /// as in a single engine. Returns `(tuples_modified, priced_ms)`.
    pub fn apply_update(
        &self,
        modifications: &[(i64, i64)],
        c: &CostConstants,
    ) -> Result<(usize, f64)> {
        let mut modified = 0;
        let mut total_ms = 0.0;
        for &(victim, new_key) in modifications {
            let src = self.router.shard_of(victim);
            let dst = self.router.shard_of(new_key);
            if src == dst {
                let slot = &self.slots[src];
                let mut eng = slot.engine.write();
                let before = eng.ledger().snapshot();
                modified += eng.apply_update(&[(victim, new_key)])?;
                total_ms += eng.ledger().snapshot().since(&before).priced(c);
                slot.updates.inc();
            } else {
                // Cross-shard move. One lock at a time: delete-take on
                // the source, then insert on the destination.
                let taken = {
                    let slot = &self.slots[src];
                    let mut eng = slot.engine.write();
                    let before = eng.ledger().snapshot();
                    let taken = eng.apply_delete_take(&[victim])?;
                    total_ms += eng.ledger().snapshot().since(&before).priced(c);
                    slot.updates.inc();
                    taken
                };
                if let Some(mut row) = taken.into_iter().next() {
                    row[self.key_field] = Value::Int(new_key);
                    let slot = &self.slots[dst];
                    let mut eng = slot.engine.write();
                    let before = eng.ledger().snapshot();
                    eng.apply_insert(std::slice::from_ref(&row))?;
                    total_ms += eng.ledger().snapshot().since(&before).priced(c);
                    slot.updates.inc();
                    self.cross_moves.inc();
                    modified += 1;
                }
            }
        }
        Ok((modified, total_ms))
    }

    /// Insert new `R1` tuples, each on the shard owning its key.
    pub fn apply_insert(&self, rows: &[Tuple], c: &CostConstants) -> Result<(usize, f64)> {
        let parts = self.router.partition_rows(rows, self.key_field);
        let mut inserted = 0;
        let mut total_ms = 0.0;
        for (s, part) in parts.iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            let slot = &self.slots[s];
            let mut eng = slot.engine.write();
            let before = eng.ledger().snapshot();
            inserted += eng.apply_insert(part)?;
            total_ms += eng.ledger().snapshot().since(&before).priced(c);
            slot.updates.inc();
        }
        Ok((inserted, total_ms))
    }

    /// Delete (up to) one `R1` tuple per listed key, each on its owning
    /// shard. Duplicates of a key all live on one shard in insertion
    /// order, so the tuple removed matches the single-engine choice.
    pub fn apply_delete(&self, keys: &[i64], c: &CostConstants) -> Result<(usize, f64)> {
        let mut per_shard: Vec<Vec<i64>> = vec![Vec::new(); self.slots.len()];
        for &k in keys {
            per_shard[self.router.shard_of(k)].push(k);
        }
        let mut deleted = 0;
        let mut total_ms = 0.0;
        for (s, part) in per_shard.iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            let slot = &self.slots[s];
            let mut eng = slot.engine.write();
            let before = eng.ledger().snapshot();
            deleted += eng.apply_delete(part)?;
            total_ms += eng.ledger().snapshot().since(&before).priced(c);
            slot.updates.inc();
        }
        Ok((deleted, total_ms))
    }

    /// Update any relation by name. `R1` routes through
    /// [`ShardedEngine::apply_update`]; an inner relation is replicated,
    /// so the transaction broadcasts to every shard and the modified
    /// count (identical on each replica) is reported once.
    pub fn apply_update_to(
        &self,
        relation: &str,
        modifications: &[(i64, i64)],
        c: &CostConstants,
    ) -> Result<(usize, f64)> {
        if relation == self.r1 {
            return self.apply_update(modifications, c);
        }
        let mut modified = 0;
        let mut total_ms = 0.0;
        for (s, slot) in self.slots.iter().enumerate() {
            let mut eng = slot.engine.write();
            let before = eng.ledger().snapshot();
            let n = eng.apply_update_to(relation, modifications)?;
            total_ms += eng.ledger().snapshot().since(&before).priced(c);
            slot.updates.inc();
            if s == 0 {
                modified = n;
            }
        }
        Ok((modified, total_ms))
    }

    /// Crash one shard (or all, with `None`). Other shards keep serving.
    pub fn crash(&self, shard: Option<usize>) {
        match shard {
            Some(s) => self.slots[s].engine.write().crash(),
            None => {
                for slot in &self.slots {
                    slot.engine.write().crash();
                }
            }
        }
    }

    /// Recover one shard (or all, with `None`); returns each recovered
    /// shard's report.
    pub fn recover(&self, shard: Option<usize>) -> Vec<(usize, RecoveryReport)> {
        match shard {
            Some(s) => vec![(s, self.slots[s].engine.write().recover())],
            None => self
                .slots
                .iter()
                .map(|slot| (slot.id, slot.engine.write().recover()))
                .collect(),
        }
    }

    /// Warm every shard's caches (uncharged), so first measured accesses
    /// are steady-state — the sharded analogue of [`Engine::warm_up`].
    pub fn warm_up(&self) -> Result<()> {
        for slot in &self.slots {
            slot.engine.write().warm_up()?;
        }
        Ok(())
    }

    /// Reference answer for procedure `i`: every shard's uncharged fresh
    /// recompute, merged. Test/verification support.
    pub fn expected_rows(&self, i: usize) -> Result<Vec<Tuple>> {
        let schema = self.output_schema(i);
        let mut partials = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            partials.push(slot.engine.read().expected_rows(i)?);
        }
        Ok(self.merge(&schema, partials))
    }

    /// Normalize rows for multiset comparison (encode + sort), using the
    /// same schema encoding as the single-engine oracle.
    pub fn normalize(&self, i: usize, rows: &[Tuple]) -> Vec<Vec<u8>> {
        self.slots[0].engine.read().normalize(i, rows)
    }

    /// All `R1` tuples across shards, uncharged, in a deterministic
    /// (schema-encoded) order. Used to resync a session's schema mirror
    /// after updates.
    pub fn scan_r1(&self) -> Result<Vec<Tuple>> {
        let mut rows: Vec<Tuple> = Vec::new();
        let mut schema: Option<Schema> = None;
        for slot in &self.slots {
            let eng = slot.engine.read();
            let pager = eng.pager().clone();
            let was = pager.is_charging();
            pager.set_charging(false);
            let table = eng.catalog().get(&self.r1).expect("R1 exists on shards");
            if schema.is_none() {
                schema = Some(table.schema().clone());
            }
            let scanned = table.scan_all();
            pager.set_charging(was);
            rows.extend(scanned?);
        }
        let schema = schema.expect("at least one shard");
        rows.sort_by_cached_key(|r| schema.encode(r));
        Ok(rows)
    }

    /// Point-in-time per-shard summaries (allocation-free on the hot
    /// path: counters are relaxed atomics, the engine is read-locked
    /// only to read sizes).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.slots
            .iter()
            .map(|slot| {
                let eng = slot.engine.read();
                let (hits, faults) = eng.pager().buffer_stats();
                ShardStats {
                    shard: slot.id,
                    accesses: slot.accesses.get(),
                    updates: slot.updates.get(),
                    escalations: slot.escalations.get(),
                    buffer_hits: hits,
                    buffer_faults: faults,
                    crash_epoch: eng.crash_epoch(),
                    rebuilds_pending: eng.rebuilds_pending(),
                    valid_fraction: eng.valid_fraction(),
                    r1_rows: eng
                        .catalog()
                        .get(&self.r1)
                        .map(|t| t.len())
                        .unwrap_or_default(),
                    access_ms_sum: slot.access_ms.sum(),
                }
            })
            .collect()
    }
}
