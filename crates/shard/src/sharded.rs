//! The partitioned engine: `S` shards — each a **replica group** of `R`
//! independent [`Engine`]s behind per-replica readers-writer locks — a
//! [`Router`] that places every `R1` tuple, and a [`WorkerPool`] that
//! fans procedure accesses out across shards.
//!
//! ## Routing
//!
//! * **Accesses** scatter to every shard: each shard's *primary*
//!   computes its partial answer over its `R1` slice (shared lock;
//!   escalated to exclusive only when the shard's strategy must write —
//!   refill a cache, fold maintenance, rebuild after a crash), and the
//!   partials merge by sorting schema-encoded rows. Partition
//!   disjointness makes the merged multiset exactly the single-engine
//!   answer.
//! * **Updates** route to the shard owning the victim key; the shard's
//!   primary applies the mutation first, then the same routed
//!   [`DeltaOp`] ships synchronously to each live follower (each
//!   follower runs its *own* strategy maintenance — AVM/Rete followers
//!   keep their own view state, CI followers their own i-locks — so
//!   failover preserves each strategy's §3 recovery class). A re-key
//!   whose new key hashes elsewhere becomes a *cross-shard move*:
//!   delete-take on the source group, rewrite the key, insert on the
//!   destination group — never holding two shard groups' mutation locks
//!   at once, so shard locks cannot deadlock.
//! * **Inner-relation updates** (`R2`/`R3` are replicated) broadcast to
//!   every shard group.
//!
//! ## Failover & resync
//!
//! A crashed primary (an injected kill-point latch, or an operator
//! `crash N`) is **promoted away from**: the freshest live follower (by
//! last-applied delta LSN; synchronous fan-out keeps live followers at
//! the head) becomes primary, the scatter-gather paths re-point, and
//! the in-flight operation retries on the new primary — so with
//! `replicas ≥ 2` a primary failure costs latency, not availability.
//! Promotion is triggered synchronously by the failing access/update
//! path, immediately by [`ShardedEngine::crash`], by an operator
//! [`ShardedEngine::promote`], or by the optional background
//! *supervisor* thread that health-checks primaries. The demoted
//! ex-primary is marked suspect: it may have applied half an operation,
//! so its position in the delta stream is ambiguous.
//!
//! A rejoining replica ([`ShardedEngine::resync`], also run by
//! [`ShardedEngine::recover`]) first recovers its engine, then catches
//! up by replaying the shard's delta log past its last applied LSN;
//! when the log has been truncated past its position — or its stream
//! position is ambiguous — it falls back to the conservative path: a
//! full `R1` snapshot install from the current primary plus whole
//! derived-state invalidation, which each strategy then repairs on
//! first access exactly as post-crash recovery does.
//!
//! Optional **hedged reads** ([`ShardedEngine::set_hedged_reads`]) let
//! an access whose primary lock is contended serve from a live follower
//! instead of waiting — safe because live followers are synchronously
//! fresh.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use procdb_core::{DeltaOp, Engine, RecoveryOutcome, StrategyKind};
use procdb_obs::{Counter, Histogram};
use procdb_query::{Schema, Tuple, Value};
use procdb_storage::{CostConstants, Result};

use crate::pool::WorkerPool;
use crate::replica::{
    DeltaLog, Replica, ReplicaRole, ReplicaStatus, ResyncReport, DEFAULT_LOG_CAP,
};
use crate::router::Router;

/// A boxed per-shard access task handed to the [`WorkerPool`]: runs one
/// shard's share of a scatter and returns `(partial rows, priced ms)`.
type AccessJob = Box<dyn FnOnce() -> Result<(Vec<Tuple>, f64)> + Send>;

/// Total time an access job may spend retrying one shard through
/// failovers before surfacing the error (the bounded failover window).
const FAILOVER_WINDOW: Duration = Duration::from_secs(2);

/// One shard: a replica group behind per-replica readers-writer locks,
/// a mutation mutex that orders the shard's delta stream, the delta
/// log, and the shard-labeled service metrics (each engine's own
/// metric series already carry the `shard` label via
/// `EngineOptions::shard`; replicas of one shard share that label).
struct ShardSlot {
    id: usize,
    replicas: Vec<Arc<Replica>>,
    /// Index into `replicas` of the current primary.
    primary: AtomicUsize,
    /// Orders mutations (and their log appends + fan-out) per shard.
    mutation: Mutex<()>,
    log: Mutex<DeltaLog>,
    accesses: Counter,
    updates: Counter,
    escalations: Counter,
    access_ms: Histogram,
    failovers: Counter,
    replica_applied: Counter,
    replica_drops: Counter,
    resync_replayed: Counter,
    resync_full: Counter,
    hedged: Counter,
}

impl ShardSlot {
    fn new(id: usize, engines: Vec<Engine>) -> ShardSlot {
        let reg = procdb_obs::global();
        let id_str = id.to_string();
        let labels: &[(&str, &str)] = &[("shard", id_str.as_str())];
        ShardSlot {
            id,
            replicas: engines
                .into_iter()
                .enumerate()
                .map(|(r, e)| Arc::new(Replica::new(r, e)))
                .collect(),
            primary: AtomicUsize::new(0),
            mutation: Mutex::new(()),
            log: Mutex::new(DeltaLog::new(DEFAULT_LOG_CAP)),
            accesses: reg.counter("procdb_shard_accesses_total", labels),
            updates: reg.counter("procdb_shard_updates_total", labels),
            escalations: reg.counter("procdb_shard_escalations_total", labels),
            access_ms: reg.histogram("procdb_shard_access_ms", labels),
            failovers: reg.counter("procdb_failover_total", labels),
            replica_applied: reg.counter("procdb_replica_applied_total", labels),
            replica_drops: reg.counter("procdb_replica_drops_total", labels),
            resync_replayed: reg.counter("procdb_replica_resync_replayed_total", labels),
            resync_full: reg.counter("procdb_replica_resync_full_total", labels),
            hedged: reg.counter("procdb_replica_hedged_reads_total", labels),
        }
    }

    fn primary_idx(&self) -> usize {
        self.primary.load(Ordering::Relaxed)
    }

    fn has_live_follower(&self, of: usize) -> bool {
        self.replicas.iter().any(|r| r.idx != of && r.is_alive())
    }
}

/// Promote the freshest live follower away from `from`, dropping `from`
/// from the group at what the *caller* judged to be an op boundary (an
/// operator crash or a read-path failure never moves the delta stream,
/// so `from`'s applied LSN stays exact and resync may replay; a caller
/// that watched `from` die **mid-apply** marks it suspect itself before
/// failing over). Lock-free against concurrent promotions: the primary
/// pointer swaps by compare-exchange, and a lost race returns whoever
/// won. `None` when no live follower exists.
fn failover(slot: &ShardSlot, from: usize) -> Option<usize> {
    let cur = slot.primary_idx();
    if cur != from {
        return Some(cur); // someone already promoted past `from`
    }
    let best = slot
        .replicas
        .iter()
        .filter(|r| r.idx != from && r.is_alive())
        .max_by_key(|r| r.applied_lsn())?;
    match slot
        .primary
        .compare_exchange(from, best.idx, Ordering::Relaxed, Ordering::Relaxed)
    {
        Ok(_) => {
            slot.replicas[from].mark_down();
            slot.failovers.inc();
            Some(best.idx)
        }
        Err(now) => Some(now),
    }
}

/// Serve one access on one replica: shared path first, escalating to
/// the exclusive lock when the strategy must write. Returns
/// `(rows, priced_ms, escalated)`.
fn serve_on(rep: &Replica, i: usize, c: &CostConstants) -> Result<(Vec<Tuple>, f64, bool)> {
    {
        let eng = rep.engine.read();
        let before = eng.ledger().snapshot();
        if let Some(rows) = eng.access_shared(i)? {
            let ms = eng.ledger().snapshot().since(&before).priced(c);
            return Ok((rows, ms, false));
        }
    }
    let mut eng = rep.engine.write();
    let before = eng.ledger().snapshot();
    let rows = eng.access(i)?;
    let ms = eng.ledger().snapshot().since(&before).priced(c);
    Ok((rows, ms, true))
}

/// Hedged read: serve from any live follower whose lock is free, via
/// the shared (read-only) path. Live followers are synchronously fresh,
/// so the answer equals the primary's. `Ok(None)` when no follower
/// could serve without writing.
fn hedged_read(
    slot: &ShardSlot,
    pidx: usize,
    i: usize,
    c: &CostConstants,
) -> Result<Option<(Vec<Tuple>, f64)>> {
    for rep in &slot.replicas {
        if rep.idx == pidx || !rep.is_alive() {
            continue;
        }
        if let Some(eng) = rep.engine.try_read() {
            let before = eng.ledger().snapshot();
            if let Some(rows) = eng.access_shared(i)? {
                let ms = eng.ledger().snapshot().since(&before).priced(c);
                slot.hedged.inc();
                return Ok(Some((rows, ms)));
            }
        }
    }
    Ok(None)
}

/// The background health-checker: promotes away from crashed primaries
/// so failover is bounded even with no traffic on the failed shard.
struct Supervisor {
    shutdown: Arc<AtomicBool>,
    handle: JoinHandle<()>,
}

/// A point-in-time summary of one shard, for `stats`/`metrics`
/// reporting and the per-shard bench section.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard id (dense, `0..shards`).
    pub shard: usize,
    /// Procedure accesses this shard served (partials count once each).
    pub accesses: u64,
    /// Update transactions routed to (or broadcast through) this shard.
    pub updates: u64,
    /// Accesses that could not finish under the shared lock and
    /// re-ran under the exclusive one (lock-conflict proxy).
    pub escalations: u64,
    /// Buffer-pool hits on the primary's private pager.
    pub buffer_hits: u64,
    /// Buffer-pool faults (misses) on the primary's private pager.
    pub buffer_faults: u64,
    /// Crashes simulated on the current primary so far.
    pub crash_epoch: u64,
    /// Derived-state rebuilds still deferred to first access (primary).
    pub rebuilds_pending: usize,
    /// Fraction of caches currently valid (CI only; primary).
    pub valid_fraction: Option<f64>,
    /// `R1` tuples this shard owns (primary's copy).
    pub r1_rows: u64,
    /// Total wall-clock milliseconds spent in accesses on this shard.
    pub access_ms_sum: f64,
    /// Replica-group size (1 = unreplicated).
    pub replicas: usize,
    /// Replicas currently live (primary included).
    pub live_replicas: usize,
    /// Index of the current primary within the group.
    pub primary_replica: usize,
    /// Head of the shard's delta log (last stamped LSN).
    pub last_lsn: u64,
    /// Worst last-applied-LSN delta among live followers (0 = fresh).
    pub max_replica_lag: u64,
    /// Promotions (automatic failovers + operator `promote`) so far.
    pub failovers: u64,
    /// Per-replica role and lag, for the `stats` columns.
    pub replica_status: Vec<ReplicaStatus>,
}

impl ShardStats {
    /// Buffer hit ratio on this shard's pager (0 when idle).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.buffer_hits + self.buffer_faults;
        if total == 0 {
            0.0
        } else {
            self.buffer_hits as f64 / total as f64
        }
    }

    /// Fraction of accesses that escalated to the exclusive lock.
    pub fn conflict_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.escalations as f64 / self.accesses as f64
        }
    }
}

/// `S` hash-partitioned replica groups with scatter-gather procedure
/// access and supervised failover.
///
/// All methods take `&self`: concurrency control is per shard, not
/// global. Two updates to different shards run in parallel; an access
/// shares each shard's primary lock with other accesses and only
/// excludes the updates touching the same shard.
pub struct ShardedEngine {
    slots: Vec<Arc<ShardSlot>>,
    router: Router,
    pool: WorkerPool,
    r1: String,
    key_field: usize,
    n_procs: usize,
    kind: StrategyKind,
    cross_moves: Counter,
    hedge: AtomicBool,
    supervisor: Mutex<Option<Supervisor>>,
}

impl ShardedEngine {
    /// Build `shards` unreplicated engines via `build(shard_id)` —
    /// identical to [`ShardedEngine::new_replicated`] with one replica
    /// per shard.
    pub fn new<E>(
        shards: usize,
        mut build: impl FnMut(usize) -> std::result::Result<Engine, E>,
    ) -> std::result::Result<Self, E> {
        Self::new_replicated(shards, 1, |s, _r| build(s))
    }

    /// Build `shards` replica groups of `replicas` engines each via
    /// `build(shard_id, replica_idx)`. Every replica of a shard must
    /// load the **same** `R1` slice (the rows [`Router::shard_of`]
    /// assigns to that shard; use [`Router::partition_rows`]) and full
    /// copies of the inner relations; every engine must share the
    /// strategy, `R1` name, key field, and procedure list. Replica 0 of
    /// each shard starts as primary. Generic over the builder's error
    /// type so callers keep their own error domain.
    pub fn new_replicated<E>(
        shards: usize,
        replicas: usize,
        mut build: impl FnMut(usize, usize) -> std::result::Result<Engine, E>,
    ) -> std::result::Result<Self, E> {
        assert!(shards > 0, "a sharded engine needs at least one shard");
        assert!(replicas > 0, "a replica group needs at least one engine");
        let mut slots = Vec::with_capacity(shards);
        for id in 0..shards {
            let mut engines = Vec::with_capacity(replicas);
            for r in 0..replicas {
                engines.push(build(id, r)?);
            }
            slots.push(Arc::new(ShardSlot::new(id, engines)));
        }
        let (r1, key_field, n_procs, kind) = {
            let eng = slots[0].replicas[0].engine.read();
            (
                eng.options().r1.clone(),
                eng.options().r1_key_field,
                eng.procedures().len(),
                eng.strategy(),
            )
        };
        for slot in &slots {
            let primary_rows = slot.replicas[0]
                .engine
                .read()
                .catalog()
                .get(&r1)
                .map(|t| t.len());
            for rep in &slot.replicas {
                let eng = rep.engine.read();
                assert_eq!(eng.options().r1, r1, "replicas must agree on R1");
                assert_eq!(
                    eng.options().r1_key_field,
                    key_field,
                    "replicas must agree on the partition key field"
                );
                assert_eq!(
                    eng.procedures().len(),
                    n_procs,
                    "replicas must register identical procedures"
                );
                assert_eq!(eng.strategy(), kind, "replicas must share the strategy");
                assert_eq!(
                    eng.catalog().get(&r1).map(|t| t.len()),
                    primary_rows,
                    "replicas of one shard must load the same R1 slice"
                );
            }
        }
        Ok(ShardedEngine {
            pool: WorkerPool::new(shards),
            router: Router::new(shards),
            slots,
            r1,
            key_field,
            n_procs,
            kind,
            cross_moves: procdb_obs::global().counter("procdb_shard_cross_moves_total", &[]),
            hedge: AtomicBool::new(false),
            supervisor: Mutex::new(None),
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.slots.len()
    }

    /// Replica-group size (identical on every shard; 1 = unreplicated).
    pub fn replicas(&self) -> usize {
        self.slots[0].replicas.len()
    }

    /// Number of registered procedures (identical on every shard).
    pub fn n_procs(&self) -> usize {
        self.n_procs
    }

    /// The strategy every shard runs.
    pub fn strategy(&self) -> StrategyKind {
        self.kind
    }

    /// The placement policy (stable hash of the `R1` key).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// `R1` re-keys that moved a tuple across the partition boundary.
    pub fn cross_moves(&self) -> u64 {
        self.cross_moves.get()
    }

    /// Promotions performed so far, summed over shards.
    pub fn failovers(&self) -> u64 {
        self.slots.iter().map(|s| s.failovers.get()).sum()
    }

    /// Current primary replica index of one shard.
    pub fn primary_of(&self, shard: usize) -> usize {
        self.slots[shard].primary_idx()
    }

    /// Enable/disable hedged reads: an access whose primary lock is
    /// contended serves from a live follower instead of waiting. Off by
    /// default (a follower read can run ahead of a concurrent update's
    /// fan-out, so strict read-your-writes callers should leave it off).
    pub fn set_hedged_reads(&self, on: bool) {
        self.hedge.store(on, Ordering::Relaxed);
    }

    /// Are hedged reads enabled?
    pub fn hedged_reads(&self) -> bool {
        self.hedge.load(Ordering::Relaxed)
    }

    /// Hedged reads served so far, summed over shards.
    pub fn hedged_read_count(&self) -> u64 {
        self.slots.iter().map(|s| s.hedged.get()).sum()
    }

    /// Cap every shard's delta-log retention at `cap` ops (truncating
    /// immediately). A replica further behind than the retained window
    /// resyncs by conservative full rebuild instead of replay.
    pub fn set_delta_log_cap(&self, cap: usize) {
        for slot in &self.slots {
            slot.log.lock().set_cap(cap);
        }
    }

    /// Start the supervisor thread: every `interval`, promote away from
    /// any crashed primary with a live follower. Idempotent.
    pub fn start_supervisor(&self, interval: Duration) {
        let mut sup = self.supervisor.lock();
        if sup.is_some() {
            return;
        }
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let slots = self.slots.clone();
        let handle = std::thread::Builder::new()
            .name("procdb-replica-supervisor".into())
            .spawn(move || {
                while !flag.load(Ordering::Relaxed) {
                    for slot in &slots {
                        let pidx = slot.primary_idx();
                        // try_read: a held write lock means busy, not dead.
                        let crashed = slot.replicas[pidx]
                            .engine
                            .try_read()
                            .map(|eng| eng.is_crashed());
                        if crashed == Some(true) && slot.has_live_follower(pidx) {
                            failover(slot, pidx);
                        }
                    }
                    std::thread::sleep(interval);
                }
            })
            .expect("spawn replica supervisor");
        *sup = Some(Supervisor { shutdown, handle });
    }

    /// Stop (and join) the supervisor thread, if running.
    pub fn stop_supervisor(&self) {
        let sup = self.supervisor.lock().take();
        if let Some(s) = sup {
            s.shutdown.store(true, Ordering::Relaxed);
            let _ = s.handle.join();
        }
    }

    /// Run `f` against one shard's **primary** engine under the shared
    /// lock.
    pub fn with_engine<R>(&self, shard: usize, f: impl FnOnce(&Engine) -> R) -> R {
        let slot = &self.slots[shard];
        f(&slot.replicas[slot.primary_idx()].engine.read())
    }

    /// Run `f` against one shard's **primary** engine under the
    /// exclusive lock.
    pub fn with_engine_mut<R>(&self, shard: usize, f: impl FnOnce(&mut Engine) -> R) -> R {
        let slot = &self.slots[shard];
        f(&mut slot.replicas[slot.primary_idx()].engine.write())
    }

    /// Run `f` against one specific replica's engine under the shared
    /// lock (test/verification support).
    pub fn with_replica_engine<R>(
        &self,
        shard: usize,
        replica: usize,
        f: impl FnOnce(&Engine) -> R,
    ) -> R {
        f(&self.slots[shard].replicas[replica].engine.read())
    }

    /// Run `f` against one specific replica's engine under the
    /// exclusive lock (test/verification support).
    pub fn with_replica_engine_mut<R>(
        &self,
        shard: usize,
        replica: usize,
        f: impl FnOnce(&mut Engine) -> R,
    ) -> R {
        f(&mut self.slots[shard].replicas[replica].engine.write())
    }

    fn output_schema(&self, i: usize) -> Schema {
        let slot = &self.slots[0];
        let eng = slot.replicas[slot.primary_idx()].engine.read();
        eng.procedures()[i].view.output_schema(eng.catalog())
    }

    /// Merge per-shard partials deterministically: partition
    /// disjointness means concatenation is the right multiset, and
    /// sorting by the schema encoding fixes the order regardless of
    /// which shard reported first.
    fn merge(&self, schema: &Schema, partials: Vec<Vec<Tuple>>) -> Vec<Tuple> {
        let mut rows: Vec<Tuple> = partials.into_iter().flatten().collect();
        rows.sort_by_cached_key(|r| schema.encode(r));
        rows
    }

    /// Access procedure `i`: scatter to every shard on the worker pool,
    /// merge the partials, and return `(rows, priced_ms)` where the cost
    /// sums each shard's ledger delta — the work a serial engine would
    /// have done, even though wall-clock overlaps it.
    ///
    /// Each shard serves from its primary — shared lock first,
    /// escalating to exclusive only when the strategy must write. A
    /// crashed primary is promoted away from and the access **retries
    /// on the new primary** within a bounded failover window, so with
    /// live followers a dying primary costs latency, not an error. With
    /// hedged reads on, a merely *contended* primary lock routes the
    /// read to a live follower.
    pub fn access(&self, i: usize, c: &CostConstants) -> Result<(Vec<Tuple>, f64)> {
        assert!(i < self.n_procs, "procedure index out of range");
        let schema = self.output_schema(i);
        let c = *c;
        let hedge = self.hedged_reads();
        // The pool's worker threads are long-lived, so the request's
        // trace context does not follow implicitly — capture it here
        // and re-install it inside each job so every shard's span links
        // under the calling request's tree.
        let trace_ctx = procdb_obs::global().current_context();
        let jobs: Vec<AccessJob> = self
            .slots
            .iter()
            .enumerate()
            .map(|(shard_id, slot)| {
                let slot = Arc::clone(slot);
                let job: AccessJob = Box::new(move || {
                    let reg = procdb_obs::global();
                    let _ctx = trace_ctx.map(|ctx| reg.install_context(ctx));
                    let mut sp = procdb_obs::span!(reg, "shard.worker", shard = shard_id);
                    let start = Instant::now();
                    let mut attempts = 0;
                    loop {
                        attempts += 1;
                        let pidx = slot.primary_idx();
                        if hedge && attempts == 1 && slot.replicas[pidx].engine.try_read().is_none()
                        {
                            if let Some((rows, ms)) = hedged_read(&slot, pidx, i, &c)? {
                                slot.accesses.inc();
                                slot.access_ms.observe(start.elapsed().as_secs_f64() * 1e3);
                                sp.field("role", pidx as f64);
                                sp.field("hedged", 1.0);
                                return Ok((rows, ms));
                            }
                        }
                        match serve_on(&slot.replicas[pidx], i, &c) {
                            Ok((rows, ms, escalated)) => {
                                if escalated {
                                    slot.escalations.inc();
                                }
                                slot.accesses.inc();
                                slot.access_ms.observe(start.elapsed().as_secs_f64() * 1e3);
                                sp.field("role", pidx as f64);
                                if escalated {
                                    sp.field("escalated", 1.0);
                                }
                                if attempts > 1 {
                                    sp.field("failovers", (attempts - 1) as f64);
                                }
                                return Ok((rows, ms));
                            }
                            Err(e) => {
                                let crashed = slot.replicas[pidx].engine.read().is_crashed();
                                if crashed
                                    && attempts <= slot.replicas.len()
                                    && start.elapsed() < FAILOVER_WINDOW
                                    && failover(&slot, pidx).is_some()
                                {
                                    continue; // retry on the promoted follower
                                }
                                return Err(e);
                            }
                        }
                    }
                });
                job
            })
            .collect();
        let mut partials = Vec::with_capacity(self.slots.len());
        let mut total_ms = 0.0;
        for out in self.pool.scatter(jobs) {
            let (rows, ms) = out?;
            partials.push(rows);
            total_ms += ms;
        }
        Ok((self.merge(&schema, partials), total_ms))
    }

    /// Ship `op` (already applied on the primary and stamped `lsn`) to
    /// every live follower of `slot`. A follower whose apply fails
    /// *crashed* is dropped from the group and marked suspect; a
    /// follower whose maintenance merely faulted keeps serving — its
    /// base effect is durable and its derived state is dirty-marked,
    /// self-healing on first access exactly like a standalone engine.
    fn fan_out(&self, slot: &ShardSlot, op: &DeltaOp, lsn: u64, c: &CostConstants) -> f64 {
        let pidx = slot.primary_idx();
        let mut ms = 0.0;
        for rep in &slot.replicas {
            if rep.idx == pidx || !rep.is_alive() {
                continue;
            }
            let mut eng = rep.engine.write();
            let before = eng.ledger().snapshot();
            let res = eng.apply_delta_op(op);
            ms += eng.ledger().snapshot().since(&before).priced(c);
            match res {
                Err(_) if eng.is_crashed() => {
                    drop(eng);
                    rep.mark_suspect();
                    slot.replica_drops.inc();
                }
                _ => {
                    eng.note_applied_lsn(lsn);
                    rep.applied.store(lsn, Ordering::Relaxed);
                    slot.replica_applied.inc();
                }
            }
        }
        ms
    }

    /// Apply one routed mutation to a shard's replica group: primary
    /// first (with promote-and-retry if the primary turns out crashed),
    /// then log-stamp and fan out to live followers. Returns
    /// `(modified, priced_ms)`; a maintenance fault on a live primary
    /// still ships the (durable) base effect to followers before the
    /// error surfaces.
    fn replicated_apply(
        &self,
        shard: usize,
        op: DeltaOp,
        c: &CostConstants,
    ) -> Result<(usize, f64)> {
        let slot = &self.slots[shard];
        let _sp = procdb_obs::span!(procdb_obs::global(), "shard.apply", shard = shard);
        let _m = slot.mutation.lock();
        let mut total_ms = 0.0;
        let mut attempts = 0;
        let (n, lsn, maint_err) = loop {
            attempts += 1;
            let pidx = slot.primary_idx();
            let prim = &slot.replicas[pidx];
            let mut eng = prim.engine.write();
            let before = eng.ledger().snapshot();
            let res = eng.apply_delta_op(&op);
            total_ms += eng.ledger().snapshot().since(&before).priced(c);
            match res {
                Ok(n) => {
                    let lsn = slot.log.lock().append(op.clone());
                    eng.note_applied_lsn(lsn);
                    prim.applied.store(lsn, Ordering::Relaxed);
                    break (n, lsn, None);
                }
                Err(e) => {
                    if eng.is_crashed() {
                        drop(eng);
                        // Died mid-apply: its base effect may have landed
                        // without the LSN being noted — ambiguous position,
                        // whoever ends up promoting past it.
                        prim.mark_suspect();
                        if attempts <= slot.replicas.len() && failover(slot, pidx).is_some() {
                            continue; // retry the op on the promoted follower
                        }
                        return Err(e);
                    }
                    // Maintenance fault on a live primary: the uncharged
                    // base effect is durable and the dirty marks are set,
                    // so the delta still ships before the error surfaces.
                    let lsn = slot.log.lock().append(op.clone());
                    eng.note_applied_lsn(lsn);
                    prim.applied.store(lsn, Ordering::Relaxed);
                    break (0, lsn, Some(e));
                }
            }
        };
        slot.updates.inc();
        total_ms += self.fan_out(slot, &op, lsn, c);
        match maint_err {
            Some(e) => Err(e),
            None => Ok((n, total_ms)),
        }
    }

    /// The delete-take half of a cross-shard move, replicated: the
    /// primary takes the rows, the followers see the same keyed delete.
    /// The taken rows are returned **even when maintenance faults** —
    /// the base deletion is durable, so the move must still complete on
    /// the destination or the tuple would be lost.
    fn replicated_delete_take(
        &self,
        shard: usize,
        keys: &[i64],
        c: &CostConstants,
    ) -> (Vec<Tuple>, f64, Result<usize>) {
        let slot = &self.slots[shard];
        let _m = slot.mutation.lock();
        let mut total_ms = 0.0;
        let mut attempts = 0;
        loop {
            attempts += 1;
            let pidx = slot.primary_idx();
            let prim = &slot.replicas[pidx];
            let mut eng = prim.engine.write();
            let before = eng.ledger().snapshot();
            let (taken, res) = eng.apply_delete_take(keys);
            total_ms += eng.ledger().snapshot().since(&before).priced(c);
            let crashed = eng.is_crashed();
            match res {
                Err(e) if crashed => {
                    drop(eng);
                    // The ex-primary's base delete may or may not have
                    // landed — suspect either way.
                    prim.mark_suspect();
                    if attempts <= slot.replicas.len() && failover(slot, pidx).is_some() {
                        // The promoted follower has not seen this op —
                        // retry there.
                        continue;
                    }
                    // No follower to fail over to: the rows (if any) are
                    // gone from this engine; surface them so the caller
                    // can still complete the move.
                    slot.updates.inc();
                    return (taken, total_ms, Err(e));
                }
                res => {
                    let lsn = slot.log.lock().append(DeltaOp::Delete(keys.to_vec()));
                    eng.note_applied_lsn(lsn);
                    prim.applied.store(lsn, Ordering::Relaxed);
                    drop(eng);
                    slot.updates.inc();
                    total_ms += self.fan_out(slot, &DeltaOp::Delete(keys.to_vec()), lsn, c);
                    return (taken, total_ms, res);
                }
            }
        }
    }

    /// Apply one `R1` update transaction, routing each `(victim,
    /// new_key)` re-key to the shard owning the victim. Pairs apply in
    /// order, so a later pair observes an earlier pair's effect exactly
    /// as in a single engine. Returns `(tuples_modified, priced_ms)`.
    pub fn apply_update(
        &self,
        modifications: &[(i64, i64)],
        c: &CostConstants,
    ) -> Result<(usize, f64)> {
        let mut modified = 0;
        let mut total_ms = 0.0;
        for &(victim, new_key) in modifications {
            let src = self.router.shard_of(victim);
            let dst = self.router.shard_of(new_key);
            if src == dst {
                let (n, ms) =
                    self.replicated_apply(src, DeltaOp::Rekey(vec![(victim, new_key)]), c)?;
                modified += n;
                total_ms += ms;
            } else {
                // Cross-shard move. One group's mutation lock at a time:
                // delete-take on the source, then insert on the
                // destination. The destination insert happens even when
                // the source's maintenance faulted — the base delete is
                // durable, so skipping the insert would lose the row.
                let (taken, ms, take_res) = self.replicated_delete_take(src, &[victim], c);
                total_ms += ms;
                let mut maint_err = take_res.err();
                if let Some(mut row) = taken.into_iter().next() {
                    row[self.key_field] = Value::Int(new_key);
                    match self.replicated_apply(dst, DeltaOp::Insert(vec![row]), c) {
                        Ok((_, ms)) => total_ms += ms,
                        Err(e) => maint_err = Some(maint_err.unwrap_or(e)),
                    }
                    self.cross_moves.inc();
                    modified += 1;
                }
                if let Some(e) = maint_err {
                    return Err(e);
                }
            }
        }
        Ok((modified, total_ms))
    }

    /// Insert new `R1` tuples, each on the shard owning its key.
    pub fn apply_insert(&self, rows: &[Tuple], c: &CostConstants) -> Result<(usize, f64)> {
        let parts = self.router.partition_rows(rows, self.key_field);
        let mut inserted = 0;
        let mut total_ms = 0.0;
        for (s, part) in parts.into_iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            let (n, ms) = self.replicated_apply(s, DeltaOp::Insert(part), c)?;
            inserted += n;
            total_ms += ms;
        }
        Ok((inserted, total_ms))
    }

    /// Delete (up to) one `R1` tuple per listed key, each on its owning
    /// shard. Duplicates of a key all live on one shard in insertion
    /// order, so the tuple removed matches the single-engine choice.
    pub fn apply_delete(&self, keys: &[i64], c: &CostConstants) -> Result<(usize, f64)> {
        let mut per_shard: Vec<Vec<i64>> = vec![Vec::new(); self.slots.len()];
        for &k in keys {
            per_shard[self.router.shard_of(k)].push(k);
        }
        let mut deleted = 0;
        let mut total_ms = 0.0;
        for (s, part) in per_shard.into_iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            let (n, ms) = self.replicated_apply(s, DeltaOp::Delete(part), c)?;
            deleted += n;
            total_ms += ms;
        }
        Ok((deleted, total_ms))
    }

    /// Update any relation by name. `R1` routes through
    /// [`ShardedEngine::apply_update`]; an inner relation is replicated,
    /// so the transaction broadcasts to every shard group and the
    /// modified count (identical on each copy) is reported once.
    pub fn apply_update_to(
        &self,
        relation: &str,
        modifications: &[(i64, i64)],
        c: &CostConstants,
    ) -> Result<(usize, f64)> {
        if relation == self.r1 {
            return self.apply_update(modifications, c);
        }
        let mut modified = 0;
        let mut total_ms = 0.0;
        for s in 0..self.slots.len() {
            let op = DeltaOp::RekeyIn {
                relation: relation.to_string(),
                mods: modifications.to_vec(),
            };
            let (n, ms) = self.replicated_apply(s, op, c)?;
            total_ms += ms;
            if s == 0 {
                modified = n;
            }
        }
        Ok((modified, total_ms))
    }

    /// Crash one shard's **primary** (or every shard's, with `None`).
    /// When the group has a live follower, the freshest one is promoted
    /// immediately — the supervised-failover path for an operator-
    /// injected crash — and the service keeps answering; the crashed
    /// ex-primary rejoins on [`ShardedEngine::recover`].
    pub fn crash(&self, shard: Option<usize>) {
        let ids: Vec<usize> = match shard {
            Some(s) => vec![s],
            None => (0..self.slots.len()).collect(),
        };
        for s in ids {
            let slot = &self.slots[s];
            let pidx = slot.primary_idx();
            slot.replicas[pidx].engine.write().crash();
            if slot.has_live_follower(pidx) {
                failover(slot, pidx);
            }
        }
    }

    /// Operator promotion: make the freshest live follower of `shard`
    /// the primary (a forced failover drill). The demoted ex-primary
    /// stays a live follower when healthy; a crashed one is marked
    /// suspect for resync. Errors when no live follower exists.
    pub fn promote(&self, shard: usize) -> std::result::Result<usize, String> {
        assert!(shard < self.slots.len(), "shard index out of range");
        let slot = &self.slots[shard];
        let _m = slot.mutation.lock();
        let pidx = slot.primary_idx();
        let Some(best) = slot
            .replicas
            .iter()
            .filter(|r| r.idx != pidx && r.is_alive())
            .max_by_key(|r| r.applied_lsn())
        else {
            return Err(format!("shard {shard} has no live follower to promote"));
        };
        let old_crashed = slot.replicas[pidx].engine.read().is_crashed();
        slot.primary.store(best.idx, Ordering::Relaxed);
        if old_crashed {
            // An operator crash is an op-boundary crash: position exact,
            // so the drop stays replayable (a mid-apply death was already
            // marked suspect by the mutation path that observed it).
            slot.replicas[pidx].mark_down();
        }
        slot.failovers.inc();
        Ok(best.idx)
    }

    /// Recover one shard's replica group (or every group, with `None`):
    /// recover each crashed engine, then resync every non-primary
    /// replica (replay or conservative rebuild) and revive it. Returns
    /// one outcome per covered shard — the primary's when it actually
    /// recovered, else the first replica that did, else `NotCrashed`.
    pub fn recover(&self, shard: Option<usize>) -> Vec<(usize, RecoveryOutcome)> {
        let ids: Vec<usize> = match shard {
            Some(s) => vec![s],
            None => (0..self.slots.len()).collect(),
        };
        ids.into_iter()
            .map(|s| (s, self.recover_group(s)))
            .collect()
    }

    fn recover_group(&self, s: usize) -> RecoveryOutcome {
        let slot = &self.slots[s];
        let _m = slot.mutation.lock(); // freeze the delta stream during resync
        let pidx = slot.primary_idx();
        let prim = &slot.replicas[pidx];
        let mut outcome = prim.engine.write().recover();
        // A recovered primary is authoritative for its shard again — it
        // may have been dropped or marked suspect when every follower
        // was also dead and no promotion was possible.
        let prim_was_suspect = prim.needs_full_resync.load(Ordering::Relaxed);
        prim.applied
            .store(prim.engine.read().applied_lsn(), Ordering::Relaxed);
        prim.needs_full_resync.store(false, Ordering::Relaxed);
        prim.alive.store(true, Ordering::Relaxed);
        for rep in &slot.replicas {
            if rep.idx == pidx {
                continue;
            }
            let o = rep.engine.write().recover();
            if o.is_recovered() && !outcome.is_recovered() {
                outcome = o;
            }
            if prim_was_suspect {
                // A suspect primary died mid-apply: its durable base may
                // hold an op the log never stamped, so replay cannot
                // reconstruct it — every follower must snapshot instead.
                rep.needs_full_resync.store(true, Ordering::Relaxed);
            }
            // A replica whose resync fails stays down (visible in stats);
            // conservative by construction.
            let _ = self.resync_replica(slot, rep);
        }
        outcome
    }

    /// Resync every non-primary replica of `shard` (or of every shard,
    /// with `None`) that is down or lagging: recover its engine if
    /// crashed, then replay the delta-log tail past its last applied
    /// LSN — or conservatively reinstall the primary's `R1` snapshot
    /// (full derived-state invalidation) when the log has been
    /// truncated past its position or its stream position is ambiguous.
    /// Returns one report per replica resynced.
    pub fn resync(&self, shard: Option<usize>) -> Result<Vec<ResyncReport>> {
        let ids: Vec<usize> = match shard {
            Some(s) => vec![s],
            None => (0..self.slots.len()).collect(),
        };
        let mut reports = Vec::new();
        for s in ids {
            let slot = &self.slots[s];
            let _m = slot.mutation.lock();
            let pidx = slot.primary_idx();
            let target = slot.log.lock().last_lsn();
            for rep in &slot.replicas {
                if rep.idx == pidx {
                    continue;
                }
                let needs = !rep.is_alive() || rep.applied_lsn() < target;
                if !needs {
                    continue;
                }
                {
                    let mut eng = rep.engine.write();
                    let _ = eng.recover();
                }
                reports.push(self.resync_replica(slot, rep)?);
            }
        }
        Ok(reports)
    }

    /// Catch one replica up to the shard's log head. Caller holds the
    /// shard's mutation lock and has already recovered the engine.
    fn resync_replica(&self, slot: &ShardSlot, rep: &Arc<Replica>) -> Result<ResyncReport> {
        let target = slot.log.lock().last_lsn();
        let mut replayed = 0usize;
        let mut full = rep.needs_full_resync.load(Ordering::Relaxed);
        if !full {
            let from = rep.engine.read().applied_lsn();
            match slot.log.lock().tail_after(from) {
                Some(tail) => {
                    let mut eng = rep.engine.write();
                    for (lsn, op) in &tail {
                        let res = eng.apply_delta_op(op);
                        if res.is_err() && eng.is_crashed() {
                            // Died mid-replay: position ambiguous again.
                            let _ = eng.recover();
                            full = true;
                            break;
                        }
                        // A plain maintenance fault leaves the base effect
                        // durable and the derived state dirty-marked —
                        // the replay position is still exact.
                        eng.note_applied_lsn(*lsn);
                        replayed += 1;
                    }
                }
                None => full = true, // truncated past this replica
            }
        }
        if full {
            let snapshot = {
                let prim = &slot.replicas[slot.primary_idx()];
                let eng = prim.engine.read();
                let pager = eng.pager().clone();
                let was = pager.is_charging();
                pager.set_charging(false);
                let rows = eng
                    .catalog()
                    .get(&self.r1)
                    .expect("R1 exists on shards")
                    .scan_all();
                pager.set_charging(was);
                rows?
            };
            let mut eng = rep.engine.write();
            eng.install_r1_snapshot(&snapshot)?;
            eng.note_applied_lsn(target);
            slot.resync_full.inc();
        } else {
            slot.resync_replayed.add(replayed as u64);
        }
        rep.applied
            .store(rep.engine.read().applied_lsn(), Ordering::Relaxed);
        rep.needs_full_resync.store(false, Ordering::Relaxed);
        rep.alive.store(true, Ordering::Relaxed);
        Ok(ResyncReport {
            shard: slot.id,
            replica: rep.idx,
            replayed,
            full_rebuild: full,
        })
    }

    /// Warm every replica's caches (uncharged), so first measured
    /// accesses are steady-state — the sharded analogue of
    /// [`Engine::warm_up`].
    pub fn warm_up(&self) -> Result<()> {
        for slot in &self.slots {
            for rep in &slot.replicas {
                rep.engine.write().warm_up()?;
            }
        }
        Ok(())
    }

    /// Reference answer for procedure `i`: every shard primary's
    /// uncharged fresh recompute, merged. Test/verification support.
    pub fn expected_rows(&self, i: usize) -> Result<Vec<Tuple>> {
        let schema = self.output_schema(i);
        let mut partials = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            partials.push(
                slot.replicas[slot.primary_idx()]
                    .engine
                    .read()
                    .expected_rows(i)?,
            );
        }
        Ok(self.merge(&schema, partials))
    }

    /// Normalize rows for multiset comparison (encode + sort), using the
    /// same schema encoding as the single-engine oracle.
    pub fn normalize(&self, i: usize, rows: &[Tuple]) -> Vec<Vec<u8>> {
        let slot = &self.slots[0];
        let eng = slot.replicas[slot.primary_idx()].engine.read();
        eng.normalize(i, rows)
    }

    /// All `R1` tuples across shard primaries, uncharged, in a
    /// deterministic (schema-encoded) order. Used to resync a session's
    /// schema mirror after updates.
    pub fn scan_r1(&self) -> Result<Vec<Tuple>> {
        let mut rows: Vec<Tuple> = Vec::new();
        let mut schema: Option<Schema> = None;
        for slot in &self.slots {
            let eng = slot.replicas[slot.primary_idx()].engine.read();
            let pager = eng.pager().clone();
            let was = pager.is_charging();
            pager.set_charging(false);
            let table = eng.catalog().get(&self.r1).expect("R1 exists on shards");
            if schema.is_none() {
                schema = Some(table.schema().clone());
            }
            let scanned = table.scan_all();
            pager.set_charging(was);
            rows.extend(scanned?);
        }
        let schema = schema.expect("at least one shard");
        rows.sort_by_cached_key(|r| schema.encode(r));
        Ok(rows)
    }

    /// Point-in-time per-shard summaries (allocation-light on the hot
    /// path: counters are relaxed atomics, the primary engine is
    /// read-locked only to read sizes).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.slots
            .iter()
            .map(|slot| {
                let pidx = slot.primary_idx();
                let last_lsn = slot.log.lock().last_lsn();
                let replica_status: Vec<ReplicaStatus> = slot
                    .replicas
                    .iter()
                    .map(|r| {
                        let role = if r.idx == pidx {
                            ReplicaRole::Primary
                        } else if r.is_alive() {
                            ReplicaRole::Follower
                        } else {
                            ReplicaRole::Down
                        };
                        let applied = r.applied_lsn();
                        ReplicaStatus {
                            replica: r.idx,
                            role,
                            applied_lsn: applied,
                            lag: last_lsn.saturating_sub(applied),
                        }
                    })
                    .collect();
                let max_replica_lag = replica_status
                    .iter()
                    .filter(|st| st.role == ReplicaRole::Follower)
                    .map(|st| st.lag)
                    .max()
                    .unwrap_or(0);
                let live_replicas = slot.replicas.iter().filter(|r| r.is_alive()).count();
                let eng = slot.replicas[pidx].engine.read();
                let (hits, faults) = eng.pager().buffer_stats();
                ShardStats {
                    shard: slot.id,
                    accesses: slot.accesses.get(),
                    updates: slot.updates.get(),
                    escalations: slot.escalations.get(),
                    buffer_hits: hits,
                    buffer_faults: faults,
                    crash_epoch: eng.crash_epoch(),
                    rebuilds_pending: eng.rebuilds_pending(),
                    valid_fraction: eng.valid_fraction(),
                    r1_rows: eng
                        .catalog()
                        .get(&self.r1)
                        .map(|t| t.len())
                        .unwrap_or_default(),
                    access_ms_sum: slot.access_ms.sum(),
                    replicas: slot.replicas.len(),
                    live_replicas,
                    primary_replica: pidx,
                    last_lsn,
                    max_replica_lag,
                    failovers: slot.failovers.get(),
                    replica_status,
                }
            })
            .collect()
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        self.stop_supervisor();
    }
}
