//! # procdb-shard
//!
//! A partitioned parallel engine over `procdb-core`: hash-partition the
//! updatable base relation `R1` across `S` shard engines — each owning
//! its own pager, heap files, i-lock table, AVM state, and Rete
//! subnetwork — and answer procedure accesses by **scatter-gather**:
//! fan the access out to every shard on a worker pool, collect the
//! per-shard partial results (selection partials for `P1`, partitioned
//! join partials for `P2`), and merge them deterministically.
//!
//! Correctness rests on two invariants:
//!
//! * **Partitioning** — every `R1` tuple lives on exactly the shard
//!   [`shard_of`] assigns to its clustering key, so the union of
//!   per-shard partials is the global answer and no tuple is counted
//!   twice. Updates that re-key a tuple across the partition boundary
//!   become a delete on the owning shard plus an insert on the
//!   receiving shard ([`procdb_core::Engine::apply_delete_take`]).
//! * **Replication** — inner relations (`R2`, `R3`) are replicated on
//!   every shard, so each shard's join partial over its `R1` slice is
//!   exact; inner-relation updates broadcast to all replicas.
//!
//! Because every shard runs the *same* strategy machinery the paper
//! analyzes (AR/CI/AVM/RVM), the sharded engine preserves the exact
//! delta semantics of the UC strategies, and its merged answers are
//! byte-identical (as normalized multisets) to a single-engine oracle —
//! a property test in `tests/shard_equivalence.rs` fuzzes exactly this,
//! crash/recover cycles included.
//!
//! ## Per-shard replication
//!
//! Each shard can additionally be a **replica group** of `R` engines
//! (primary + followers, [`ShardedEngine::new_replicated`]): every
//! routed mutation applies to the primary and ships as a logical
//! [`procdb_core::DeltaOp`] to each live follower, so every replica
//! maintains its *own* derived state and failover preserves each
//! strategy's recovery class. A crashed primary is promoted away from
//! — synchronously by the failing access/update, immediately by
//! `crash`, by an operator [`ShardedEngine::promote`], or by the
//! background supervisor — and rejoining replicas resync by delta-log
//! replay with a conservative full-rebuild fallback
//! ([`ShardedEngine::resync`]). `tests/replica_failover.rs` fuzzes
//! oracle equivalence under injected primary crashes, promotions, and
//! resyncs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
mod pool;
mod replica;
mod router;
mod sharded;

pub use chaos::{ChaosInjector, ChaosPlan, ChaosStatus};
pub use pool::WorkerPool;
pub use replica::{ReplicaRole, ReplicaStatus, ResyncReport};
pub use router::{shard_of, Router};
pub use sharded::{BreakerState, ShardStats, ShardedEngine};
