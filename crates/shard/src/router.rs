//! Key → shard placement.
//!
//! `R1` is hash-partitioned on its clustering/selection key. The hash is
//! a fixed splitmix64 finalizer — *not* the process-seeded `DefaultHasher`
//! — so placement is stable across runs, processes, and machines; the
//! equivalence property test and the bench harness both rely on a run
//! with `S` shards placing every tuple exactly where the previous run
//! did.

use procdb_query::Tuple;

/// Owning shard for a clustering-key value under an `shards`-way
/// partitioning. Pure and deterministic; `shards` must be non-zero.
pub fn shard_of(key: i64, shards: usize) -> usize {
    assert!(shards > 0, "shard_of needs at least one shard");
    // splitmix64 finalizer: cheap, well-mixed, and stable.
    let mut z = (key as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

/// Placement policy for a fixed shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Router {
    shards: usize,
}

impl Router {
    /// A router over `shards` partitions (panics on zero).
    pub fn new(shards: usize) -> Router {
        assert!(shards > 0, "a router needs at least one shard");
        Router { shards }
    }

    /// Number of partitions this router maps onto.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Owning shard for a clustering-key value.
    pub fn shard_of(&self, key: i64) -> usize {
        shard_of(key, self.shards)
    }

    /// Deal `rows` into per-shard groups by the integer key at
    /// `key_field`, preserving the relative order of rows within each
    /// group (insertion order among duplicates of a key decides which
    /// tuple a keyed delete removes — the split must not reorder them).
    pub fn partition_rows(&self, rows: &[Tuple], key_field: usize) -> Vec<Vec<Tuple>> {
        let mut parts: Vec<Vec<Tuple>> = vec![Vec::new(); self.shards];
        for row in rows {
            parts[self.shard_of(row[key_field].as_int())].push(row.clone());
        }
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use procdb_query::Value;

    #[test]
    fn placement_is_stable_and_total() {
        for shards in 1..=8 {
            for key in -1000i64..1000 {
                let s = shard_of(key, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(key, shards), "must be deterministic");
            }
        }
    }

    #[test]
    fn placement_is_reasonably_balanced() {
        let shards = 4;
        let mut counts = vec![0usize; shards];
        for key in 0i64..10_000 {
            counts[shard_of(key, shards)] += 1;
        }
        for &c in &counts {
            // Within ±25% of the fair share for a uniform key range.
            assert!(
                (1875..=3125).contains(&c),
                "skewed partitioning: {counts:?}"
            );
        }
    }

    #[test]
    fn partition_preserves_relative_order() {
        let router = Router::new(3);
        let rows: Vec<Tuple> = (0..30)
            .map(|i| vec![Value::Int(i % 5), Value::Int(i)])
            .collect();
        let parts = router.partition_rows(&rows, 0);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), rows.len());
        for part in &parts {
            for pair in part.windows(2) {
                if pair[0][0] == pair[1][0] {
                    assert!(pair[0][1].as_int() < pair[1][1].as_int());
                }
            }
        }
    }
}
