//! Replica groups: the per-shard building blocks of replication.
//!
//! Each shard of a replicated [`ShardedEngine`] is a group of `R`
//! engines — one **primary** plus followers — kept in lockstep by
//! shipping every routed base mutation to each live follower as a
//! [`DeltaOp`] (see [`procdb_core::replication`]). The group's
//! [`DeltaLog`] stamps every shipped op with a log-sequence number; a
//! rejoining replica catches up by replaying the tail past its last
//! applied LSN, or — when the log has been truncated past its position,
//! or its last apply was ambiguous — by a conservative full resync from
//! the current primary's slice.
//!
//! [`ShardedEngine`]: crate::ShardedEngine
//! [`DeltaOp`]: procdb_core::DeltaOp

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use parking_lot::RwLock;
use procdb_core::{DeltaOp, Engine, ShippedDelta};

/// One member of a shard's replica group.
///
/// `alive`/`applied`/`needs_full_resync` mirror engine state as relaxed
/// atomics so promotion decisions and lag reporting never need the
/// engine lock (the engine's own [`Engine::applied_lsn`] stays the
/// authoritative value for resync).
pub(crate) struct Replica {
    /// Stable index of this replica within its group (0 = the initial
    /// primary).
    pub idx: usize,
    pub engine: RwLock<Engine>,
    /// Serving? Cleared when a replica is dropped from the group after a
    /// failed apply or a primary failover; set again by resync.
    pub alive: AtomicBool,
    /// Last delta LSN applied (mirror of the engine's counter).
    pub applied: AtomicU64,
    /// The replica's position in the delta stream is ambiguous (it died
    /// mid-apply): log replay could double-apply, so resync must take
    /// the conservative snapshot path.
    pub needs_full_resync: AtomicBool,
    /// Highest group epoch this replica has seen on a delivery. A ship
    /// stamped with an older epoch came from a fenced primary and is
    /// refused at the door.
    pub last_epoch: AtomicU64,
    /// Chaos reorder buffer: deliveries held out of order (delayed,
    /// duplicated, swapped) park here and are drained strictly in LSN
    /// order, like a TCP reassembly queue. Empty when no chaos plan is
    /// installed.
    pub inbox: Mutex<Vec<ShippedDelta>>,
}

impl Replica {
    pub fn new(idx: usize, engine: Engine) -> Replica {
        Replica {
            idx,
            engine: RwLock::new(engine),
            alive: AtomicBool::new(true),
            applied: AtomicU64::new(0),
            needs_full_resync: AtomicBool::new(false),
            last_epoch: AtomicU64::new(0),
            inbox: Mutex::new(Vec::new()),
        }
    }

    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Relaxed)
    }

    pub fn applied_lsn(&self) -> u64 {
        self.applied.load(Ordering::Relaxed)
    }

    /// Drop this replica from the group at a clean op boundary: its
    /// last applied LSN is exact, so a later resync may catch up by
    /// delta-log replay.
    pub fn mark_down(&self) {
        self.alive.store(false, Ordering::Relaxed);
    }

    /// Mark this replica dead with an **ambiguous** stream position (it
    /// died mid-apply, so the base effect of its in-flight op may have
    /// landed without the LSN being noted): replay could double-apply,
    /// forcing resync down the conservative snapshot path.
    pub fn mark_suspect(&self) {
        self.alive.store(false, Ordering::Relaxed);
        self.needs_full_resync.store(true, Ordering::Relaxed);
    }

    /// Record a delivery's epoch stamp. Returns `false` when the stamp
    /// is *older* than an epoch this replica has already seen — the
    /// ship came from a fenced ex-primary and must be refused.
    pub fn note_epoch(&self, epoch: u64) -> bool {
        note_epoch_watermark(&self.last_epoch, epoch)
    }
}

/// Advance an epoch watermark; `false` means `epoch` is stale (older
/// than one already observed) and the delivery carrying it must be
/// refused.
pub(crate) fn note_epoch_watermark(last: &AtomicU64, epoch: u64) -> bool {
    let prev = last.fetch_max(epoch, Ordering::Relaxed);
    epoch >= prev
}

/// A bounded in-memory delta log: `(lsn, op)` pairs, LSNs dense from 1.
///
/// The cap models log truncation: once more than `cap` ops are retained
/// the oldest are discarded, and a replica whose last applied LSN falls
/// before the retained window can no longer catch up by replay —
/// [`DeltaLog::tail_after`] reports the gap and the caller falls back to
/// a full resync.
pub(crate) struct DeltaLog {
    entries: VecDeque<ShippedDelta>,
    next_lsn: u64,
    cap: usize,
}

/// Default retained-ops cap: large enough that a promptly-resynced
/// replica always replays, small enough that tests can outrun it.
pub(crate) const DEFAULT_LOG_CAP: usize = 256;

impl DeltaLog {
    pub fn new(cap: usize) -> DeltaLog {
        DeltaLog {
            entries: VecDeque::new(),
            next_lsn: 1,
            cap: cap.max(1),
        }
    }

    /// Stamp and retain one op under the committing primary's epoch;
    /// returns its LSN.
    pub fn append(&mut self, op: DeltaOp, epoch: u64) -> u64 {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        self.entries.push_back(ShippedDelta::new(epoch, lsn, op));
        while self.entries.len() > self.cap {
            self.entries.pop_front();
        }
        lsn
    }

    /// Highest LSN stamped so far (0 = empty log).
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// Change the retention cap (truncating immediately if lower).
    pub fn set_cap(&mut self, cap: usize) {
        self.cap = cap.max(1);
        while self.entries.len() > self.cap {
            self.entries.pop_front();
        }
    }

    /// Every retained op with `lsn > after`, oldest first — or `None`
    /// when the log has been truncated past `after` (the gap means
    /// replay cannot reconstruct the stream; full resync required).
    pub fn tail_after(&self, after: u64) -> Option<Vec<ShippedDelta>> {
        if after >= self.last_lsn() {
            return Some(Vec::new());
        }
        let oldest_retained = self.entries.front().map(|d| d.lsn)?;
        if after + 1 < oldest_retained {
            return None; // truncated: ops (after, oldest_retained) are gone
        }
        Some(
            self.entries
                .iter()
                .filter(|d| d.lsn > after)
                .cloned()
                .collect(),
        )
    }
}

/// A replica's role within its group, as reported by `stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaRole {
    /// Currently serving reads and taking writes first.
    Primary,
    /// Live, applying the primary's delta stream.
    Follower,
    /// Dropped from the group; needs resync to rejoin.
    Down,
}

impl std::fmt::Display for ReplicaRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ReplicaRole::Primary => "primary",
            ReplicaRole::Follower => "follower",
            ReplicaRole::Down => "down",
        })
    }
}

/// Point-in-time status of one replica (for `stats` role/lag columns).
#[derive(Debug, Clone, Copy)]
pub struct ReplicaStatus {
    /// Replica index within its shard's group.
    pub replica: usize,
    /// Role right now.
    pub role: ReplicaRole,
    /// Last delta LSN this replica applied.
    pub applied_lsn: u64,
    /// How many deltas behind the shard's log head (0 = fresh).
    pub lag: u64,
}

/// What one replica's resync did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResyncReport {
    /// Shard the replica belongs to.
    pub shard: usize,
    /// Replica index within the group.
    pub replica: usize,
    /// Ops replayed from the delta log (anti-entropy catch-up).
    pub replayed: usize,
    /// Fell back to the conservative snapshot install (log truncated,
    /// or the replica's stream position was ambiguous).
    pub full_rebuild: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_stamps_dense_lsns_and_replays_tails() {
        let mut log = DeltaLog::new(8);
        assert_eq!(log.last_lsn(), 0);
        for i in 0..5 {
            assert_eq!(log.append(DeltaOp::Delete(vec![i]), 1), (i + 1) as u64);
        }
        let tail = log.tail_after(2).expect("retained");
        assert_eq!(
            tail.iter().map(|d| d.lsn).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        assert!(tail.iter().all(|d| d.epoch == 1), "epoch stamps retained");
        assert!(log.tail_after(5).expect("caught up").is_empty());
        assert!(log
            .tail_after(9)
            .expect("ahead of head is vacuous")
            .is_empty());
    }

    #[test]
    fn truncation_surfaces_as_a_gap() {
        let mut log = DeltaLog::new(3);
        for i in 0..10i64 {
            log.append(DeltaOp::Delete(vec![i]), 1);
        }
        // Retained: LSNs 8..=10. A replica at LSN 7 can still replay...
        assert_eq!(log.tail_after(7).expect("contiguous").len(), 3);
        // ...but one at LSN 4 cannot: ops 5..=7 are gone.
        assert!(log.tail_after(4).is_none(), "gap must force full resync");
        log.set_cap(1);
        assert!(log.tail_after(8).is_none(), "cap shrink truncates");
        assert_eq!(log.tail_after(9).expect("head retained").len(), 1);
    }

    #[test]
    fn epoch_watermark_refuses_stale_ships() {
        let last = AtomicU64::new(0);
        assert!(note_epoch_watermark(&last, 1), "first epoch accepted");
        assert!(note_epoch_watermark(&last, 1), "same epoch accepted");
        assert!(note_epoch_watermark(&last, 3), "newer epoch accepted");
        assert!(
            !note_epoch_watermark(&last, 2),
            "older epoch refused: fenced primary"
        );
        assert_eq!(last.load(Ordering::Relaxed), 3);
    }
}
