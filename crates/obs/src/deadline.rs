//! Request-deadline propagation.
//!
//! A server that accepts a per-request time budget installs the
//! absolute deadline here ([`install_deadline`]); every layer below —
//! session, shard scatter-gather workers, engine lock acquisition —
//! reads it back with [`current_deadline`] / [`deadline_expired`] and
//! turns an exhausted budget into a typed partial-failure instead of
//! queueing indefinitely behind a slow shard.
//!
//! The deadline lives in a thread-local, exactly like the request
//! [`TraceContext`](crate::TraceContext): worker pools whose threads
//! are long-lived must capture the caller's deadline explicitly and
//! re-install it inside each job closure. The returned
//! [`DeadlineGuard`] restores the previous value on drop, so nested
//! scopes (a sub-request with a tighter budget) compose.

use std::cell::Cell;
use std::time::{Duration, Instant};

thread_local! {
    static DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Install `deadline` as the current thread's request deadline; the
/// previous value (if any) is restored when the guard drops.
pub fn install_deadline(deadline: Instant) -> DeadlineGuard {
    let prev = DEADLINE.with(|d| d.replace(Some(deadline)));
    DeadlineGuard { prev }
}

/// The deadline installed on this thread, if any.
pub fn current_deadline() -> Option<Instant> {
    DEADLINE.with(|d| d.get())
}

/// Budget left before the installed deadline (`None` when no deadline
/// is installed; zero once it has passed).
pub fn deadline_remaining() -> Option<Duration> {
    current_deadline().map(|d| d.saturating_duration_since(Instant::now()))
}

/// Has the installed deadline passed? `false` when none is installed.
pub fn deadline_expired() -> bool {
    current_deadline().is_some_and(|d| Instant::now() >= d)
}

/// Scope guard from [`install_deadline`]: restores the thread's
/// previous deadline (or clears it) on drop.
pub struct DeadlineGuard {
    prev: Option<Instant>,
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        DEADLINE.with(|d| d.set(prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_read_restore() {
        assert_eq!(current_deadline(), None);
        assert!(!deadline_expired());
        assert_eq!(deadline_remaining(), None);
        let far = Instant::now() + Duration::from_secs(60);
        {
            let _g = install_deadline(far);
            assert_eq!(current_deadline(), Some(far));
            assert!(!deadline_expired());
            assert!(deadline_remaining().expect("budget") > Duration::from_secs(50));
            let near = Instant::now() - Duration::from_millis(1);
            {
                let _inner = install_deadline(near);
                assert_eq!(current_deadline(), Some(near), "nested scope wins");
                assert!(deadline_expired(), "past deadline reads expired");
                assert_eq!(deadline_remaining(), Some(Duration::ZERO));
            }
            assert_eq!(current_deadline(), Some(far), "inner guard restores");
        }
        assert_eq!(current_deadline(), None, "outer guard clears");
    }
}
