//! # procdb-obs
//!
//! Unified observability for the `procdb` reproduction of Hanson
//! (SIGMOD 1988): a lock-cheap metrics registry and a span-tracing ring
//! buffer, shared by the engine, the storage substrate, and the server.
//!
//! ## Metrics
//!
//! [`Registry`] hands out [`Counter`], [`FloatCounter`], [`Gauge`], and
//! [`Histogram`] handles keyed by `(name, labels)`. Registration takes a
//! mutex once; the handles themselves are `Arc`-wrapped atomics, so the
//! hot path is a single relaxed `fetch_add` — instrumentation stays
//! cheap enough to leave on permanently. [`Registry::render_prometheus`]
//! emits the whole registry in the Prometheus text exposition format.
//!
//! Histograms use fixed log-scale (powers-of-two) buckets, so a latency
//! distribution costs 32 atomics, not a sample vector.
//!
//! ## Spans and request traces
//!
//! [`span!`] opens a [`SpanGuard`] that records the span's wall-clock
//! duration, nesting depth, and any number of named `f64` fields into a
//! bounded in-memory ring buffer when tracing is enabled
//! ([`Registry::set_tracing`]). When tracing is off a span is one atomic
//! load — the hot path never pays for dormant tracing. Callers attach
//! whatever they observed (ledger deltas, predicted costs) as fields;
//! the buffer is queryable with [`Registry::recent_spans`].
//!
//! On top of the flat ring sits request-scoped tracing: a server
//! installs a [`TraceContext`] per sampled request
//! ([`Registry::sample_request`], [`Registry::install_context`]) and
//! every span opened under it — across layers and, via explicit
//! capture, across worker threads — links into one span tree
//! ([`TraceTree`]). Trees whose total latency crosses the slow-query
//! threshold are retained in full ([`Registry::slow_traces`]); the rest
//! cycle through a bounded recent ring ([`Registry::find_trace`]).
//!
//! ## Deadlines
//!
//! [`install_deadline`] propagates a request's absolute deadline down
//! the stack through a thread-local (captured explicitly across worker
//! pools, like trace contexts), so the shard layer can turn an
//! exhausted budget into a typed `DEADLINE` error instead of queueing
//! behind a slow shard.
//!
//! The crate is dependency-free (std only) so every other `procdb` crate
//! can instrument itself against [`global()`] without dependency cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deadline;
pub mod registry;
pub mod trace;

pub use deadline::{
    current_deadline, deadline_expired, deadline_remaining, install_deadline, DeadlineGuard,
};
pub use registry::{Counter, FloatCounter, Gauge, Histogram, MetricValue, Registry, Sample};
pub use trace::{BoostGuard, ContextGuard, SpanEvent, SpanGuard, TraceContext, TraceTree};

use std::sync::OnceLock;

/// The process-global registry: every crate's built-in instrumentation
/// records here, and the server's `metrics` command renders it.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Open a span on a registry: `span!(reg, "access", proc = i)`.
///
/// Every `key = value` pair after the name becomes an `f64` field on the
/// recorded event (values are cast with `as f64`). The span ends when
/// the returned [`SpanGuard`] drops; add late fields (observed costs,
/// row counts) with [`SpanGuard::field`] before then.
#[macro_export]
macro_rules! span {
    ($reg:expr, $name:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        #[allow(unused_mut)]
        let mut __span = $reg.span($name);
        $(__span.field(stringify!($key), $val as f64);)*
        __span
    }};
}
