//! The metrics registry: labeled counters, gauges, and log-scale
//! histograms behind `Arc`-atomic handles, with Prometheus text
//! exposition.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing integer counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A monotonically increasing `f64` counter (for accumulated model
/// milliseconds and other fractional totals). The value is stored as
/// `f64` bits in an `AtomicU64` and added with a CAS loop — still
/// lock-free, slightly dearer than [`Counter`].
#[derive(Debug, Clone, Default)]
pub struct FloatCounter(Arc<AtomicU64>);

impl FloatCounter {
    /// Add `v` (negative, zero, and NaN values are ignored: counters
    /// only go up).
    pub fn add(&self, v: f64) {
        if v.is_nan() || v <= 0.0 {
            return;
        }
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A settable `f64` gauge.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of finite histogram buckets (the last bucket is `+Inf`).
pub const HISTOGRAM_BUCKETS: usize = 28;

/// Upper bound of finite bucket `i`: `2^i` (in the metric's own unit).
fn bucket_bound(i: usize) -> f64 {
    (1u64 << i) as f64
}

#[derive(Debug)]
struct HistogramInner {
    /// `buckets[i]` counts observations `<= 2^i`; one extra for `+Inf`.
    buckets: [AtomicU64; HISTOGRAM_BUCKETS + 1],
    count: AtomicU64,
    sum: FloatCounter,
}

/// A fixed-bucket log-scale histogram: powers-of-two boundaries from 1
/// to 2^27 in the metric's natural unit (microseconds for latencies,
/// dimensionless for ratios), plus `+Inf`.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: FloatCounter::default(),
        }))
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let idx = if v <= 1.0 {
            0
        } else {
            (v.log2().ceil() as usize).min(HISTOGRAM_BUCKETS)
        };
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.add(v.max(0.0));
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.0.sum.get()
    }

    /// Mean observation (`NaN`-free: 0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Per-bucket (non-cumulative) counts, finite buckets then `+Inf`.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    FloatCounter(FloatCounter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) | Metric::FloatCounter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// `(name, sorted labels)` — the registry key.
type Key = (String, Vec<(String, String)>);

/// A flattened metric reading (for tests and JSON export).
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name.
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// The reading.
    pub value: MetricValue,
}

/// The value of one metric in a [`Sample`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Integer counter value.
    Counter(u64),
    /// Float counter or gauge value.
    Float(f64),
    /// Histogram `(count, sum)`.
    Histogram(u64, f64),
}

/// The metrics registry plus the span-trace ring buffer and the
/// request-trace store (see [`crate::trace`]). Handle creation locks a
/// mutex; recording through a handle is lock-free.
#[derive(Debug)]
pub struct Registry {
    metrics: Mutex<BTreeMap<Key, Metric>>,
    /// Master switch read by every `span!` site: true when either
    /// legacy tracing or request sampling is active.
    pub(crate) tracing: std::sync::atomic::AtomicBool,
    /// `trace on|off` — context-free flat span recording.
    pub(crate) legacy_trace: std::sync::atomic::AtomicBool,
    /// Request sampling rate: 0 off, 1 every request, n one-in-n.
    pub(crate) trace_sample: AtomicU64,
    /// Seed for the deterministic sampler and trace-id generator.
    pub(crate) trace_seed: AtomicU64,
    /// Request ordinal fed to the sampler.
    pub(crate) trace_counter: AtomicU64,
    /// Span-id allocator (ids are unique per registry, never 0).
    pub(crate) span_ids: AtomicU64,
    /// Live forced-trace guards (`explain analyze`, client-supplied
    /// trace ids): while > 0 the master switch stays on.
    pub(crate) trace_boost: AtomicU64,
    /// Slow-query threshold, microseconds as `f64` bits.
    pub(crate) slow_threshold_us: AtomicU64,
    pub(crate) spans: Mutex<std::collections::VecDeque<crate::trace::SpanEvent>>,
    pub(crate) span_seq: AtomicU64,
    pub(crate) traces: Mutex<crate::trace::TraceStore>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry {
            metrics: Mutex::default(),
            tracing: Default::default(),
            legacy_trace: Default::default(),
            trace_sample: AtomicU64::new(0),
            trace_seed: AtomicU64::new(0),
            trace_counter: AtomicU64::new(0),
            span_ids: AtomicU64::new(0),
            trace_boost: AtomicU64::new(0),
            slow_threshold_us: AtomicU64::new(crate::trace::DEFAULT_SLOW_THRESHOLD_US.to_bits()),
            spans: Mutex::default(),
            span_seq: AtomicU64::new(0),
            traces: Mutex::default(),
        }
    }
}

fn key(name: &str, labels: &[(&str, &str)]) -> Key {
    let mut l: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    l.sort();
    (name.to_string(), l)
}

impl Registry {
    /// An empty registry with tracing off.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert<T: Clone>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
        pick: impl FnOnce(&Metric) -> Option<T>,
    ) -> T {
        let mut metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let m = metrics.entry(key(name, labels)).or_insert_with(make);
        pick(m).unwrap_or_else(|| {
            panic!("metric {name} already registered as a {}", m.kind());
        })
    }

    /// Get or register a counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.get_or_insert(
            name,
            labels,
            || Metric::Counter(Counter::default()),
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Get or register a float counter.
    pub fn float_counter(&self, name: &str, labels: &[(&str, &str)]) -> FloatCounter {
        self.get_or_insert(
            name,
            labels,
            || Metric::FloatCounter(FloatCounter::default()),
            |m| match m {
                Metric::FloatCounter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Get or register a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.get_or_insert(
            name,
            labels,
            || Metric::Gauge(Gauge::default()),
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Get or register a histogram.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.get_or_insert(
            name,
            labels,
            || Metric::Histogram(Histogram::default()),
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Flatten every metric into a [`Sample`] list (sorted by name, then
    /// labels — the registry's natural order).
    pub fn samples(&self) -> Vec<Sample> {
        let metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        metrics
            .iter()
            .map(|((name, labels), m)| Sample {
                name: name.clone(),
                labels: labels.clone(),
                value: match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::FloatCounter(c) => MetricValue::Float(c.get()),
                    Metric::Gauge(g) => MetricValue::Float(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.count(), h.sum()),
                },
            })
            .collect()
    }

    /// Render the whole registry in the Prometheus text exposition
    /// format (`# TYPE` headers, `_bucket`/`_sum`/`_count` histogram
    /// series with cumulative `le` buckets).
    pub fn render_prometheus(&self) -> String {
        let metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        let mut last_name = "";
        for ((name, labels), m) in metrics.iter() {
            if name != last_name {
                out.push_str(&format!("# TYPE {name} {}\n", m.kind()));
            }
            match m {
                Metric::Counter(c) => {
                    out.push_str(&format!(
                        "{name}{} {}\n",
                        render_labels(labels, None),
                        c.get()
                    ));
                }
                Metric::FloatCounter(c) => {
                    out.push_str(&format!(
                        "{name}{} {}\n",
                        render_labels(labels, None),
                        c.get()
                    ));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!(
                        "{name}{} {}\n",
                        render_labels(labels, None),
                        g.get()
                    ));
                }
                Metric::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let mut cum = 0u64;
                    for (i, c) in counts.iter().enumerate() {
                        cum += c;
                        let le = if i < HISTOGRAM_BUCKETS {
                            format!("{}", bucket_bound(i))
                        } else {
                            "+Inf".to_string()
                        };
                        out.push_str(&format!(
                            "{name}_bucket{} {cum}\n",
                            render_labels(labels, Some(&le))
                        ));
                    }
                    out.push_str(&format!(
                        "{name}_sum{} {}\n",
                        render_labels(labels, None),
                        h.sum()
                    ));
                    out.push_str(&format!(
                        "{name}_count{} {}\n",
                        render_labels(labels, None),
                        h.count()
                    ));
                }
            }
            last_name = name;
        }
        out
    }
}

fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_identity_by_name_and_labels() {
        let r = Registry::new();
        let a = r.counter("requests_total", &[("op", "read")]);
        let b = r.counter("requests_total", &[("op", "read")]);
        let c = r.counter("requests_total", &[("op", "write")]);
        a.inc();
        b.add(2);
        c.inc();
        assert_eq!(a.get(), 3, "same key shares one cell");
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn float_counter_accumulates_and_ignores_nonpositive() {
        let f = FloatCounter::default();
        f.add(1.5);
        f.add(2.5);
        f.add(-10.0);
        f.add(f64::NAN);
        assert_eq!(f.get(), 4.0);
    }

    #[test]
    fn gauge_sets() {
        let r = Registry::new();
        let g = r.gauge("hit_ratio", &[]);
        g.set(0.75);
        assert_eq!(g.get(), 0.75);
        g.set(0.5);
        assert_eq!(g.get(), 0.5);
    }

    #[test]
    fn histogram_buckets_are_log_scale() {
        let h = Histogram::default();
        h.observe(0.5); // bucket 0 (le 1)
        h.observe(1.0); // bucket 0
        h.observe(3.0); // le 4 → bucket 2
        h.observe(1e12); // overflow → +Inf
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 2);
        assert_eq!(counts[2], 1);
        assert_eq!(counts[HISTOGRAM_BUCKETS], 1);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - (0.5 + 1.0 + 3.0 + 1e12)).abs() < 1.0);
        h.observe(f64::NAN); // dropped, not a poison value
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn histogram_mean_empty_is_zero_not_nan() {
        let h = Histogram::default();
        assert_eq!(h.mean(), 0.0);
        h.observe(4.0);
        h.observe(6.0);
        assert_eq!(h.mean(), 5.0);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let r = Registry::new();
        r.counter("procdb_ops_total", &[("strategy", "avm")]).add(7);
        r.gauge("procdb_hit_ratio", &[]).set(0.5);
        let h = r.histogram("procdb_latency_us", &[("op", "access")]);
        h.observe(3.0);
        h.observe(100.0);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE procdb_ops_total counter"), "{text}");
        assert!(
            text.contains("procdb_ops_total{strategy=\"avm\"} 7"),
            "{text}"
        );
        assert!(text.contains("# TYPE procdb_hit_ratio gauge"), "{text}");
        assert!(text.contains("procdb_hit_ratio 0.5"), "{text}");
        assert!(
            text.contains("# TYPE procdb_latency_us histogram"),
            "{text}"
        );
        assert!(
            text.contains("procdb_latency_us_bucket{op=\"access\",le=\"4\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("procdb_latency_us_bucket{op=\"access\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("procdb_latency_us_count{op=\"access\"} 2"),
            "{text}"
        );
        // Cumulative buckets are monotone: the 128-bucket already holds both.
        assert!(
            text.contains("procdb_latency_us_bucket{op=\"access\",le=\"128\"} 2"),
            "{text}"
        );
    }

    #[test]
    fn samples_flatten_sorted() {
        let r = Registry::new();
        r.counter("b_total", &[]).inc();
        r.counter("a_total", &[("x", "2")]).add(2);
        let s = r.samples();
        assert_eq!(s[0].name, "a_total");
        assert_eq!(s[0].value, MetricValue::Counter(2));
        assert_eq!(s[1].name, "b_total");
    }

    #[test]
    fn label_escaping() {
        let r = Registry::new();
        r.counter("esc_total", &[("v", "a\"b\\c")]).inc();
        let text = r.render_prometheus();
        assert!(text.contains("esc_total{v=\"a\\\"b\\\\c\"} 1"), "{text}");
    }
}
