//! Span tracing: bounded ring buffer of structured timing events.
//!
//! A span is opened with [`crate::span!`] (or [`Registry::span`]) and
//! recorded when its guard drops. Each event carries the span name, the
//! wall-clock duration, the nesting depth on the recording thread, a
//! monotone sequence number, and arbitrary named `f64` fields attached
//! by the caller (ledger deltas, predicted/observed costs, row counts).
//!
//! Tracing is off by default: an inactive span is one relaxed atomic
//! load and no allocation, so instrumented hot paths stay hot.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::time::Instant;

use crate::registry::Registry;

/// Default ring-buffer capacity (events; oldest evicted first).
pub const TRACE_CAPACITY: usize = 1024;

/// One recorded span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Span name (e.g. `"access"`, `"recompute"`).
    pub name: String,
    /// Named `f64` fields attached by the instrumented code.
    pub fields: Vec<(&'static str, f64)>,
    /// Wall-clock duration in microseconds.
    pub dur_us: f64,
    /// Nesting depth on the recording thread (0 = outermost).
    pub depth: u32,
    /// Monotone per-registry sequence number (records completion order).
    pub seq: u64,
}

impl SpanEvent {
    /// Value of a named field, if attached.
    pub fn field(&self, name: &str) -> Option<f64> {
        self.fields
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| *v)
    }

    /// One-line rendering for the shell's `explain` span dump.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:indent$}{} {:.0}us",
            "",
            self.name,
            self.dur_us,
            indent = (self.depth as usize) * 2
        );
        for (k, v) in &self.fields {
            if (v.fract()).abs() < 1e-9 && v.abs() < 1e15 {
                out.push_str(&format!(" {k}={}", *v as i64));
            } else {
                out.push_str(&format!(" {k}={v:.2}"));
            }
        }
        out
    }
}

thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// An open span; records a [`SpanEvent`] into its registry's ring
/// buffer on drop (when tracing was enabled at open time).
pub struct SpanGuard<'r> {
    active: Option<ActiveSpan<'r>>,
}

struct ActiveSpan<'r> {
    registry: &'r Registry,
    name: &'static str,
    fields: Vec<(&'static str, f64)>,
    start: Instant,
}

impl SpanGuard<'_> {
    /// Attach (or append) a named field. No-op when tracing is off.
    pub fn field(&mut self, name: &'static str, value: f64) {
        if let Some(a) = self.active.as_mut() {
            a.fields.push((name, value));
        }
    }

    /// Whether this span is live (tracing was on when it opened).
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        let dur_us = a.start.elapsed().as_secs_f64() * 1e6;
        let depth = DEPTH.with(|d| {
            let v = d.get().saturating_sub(1);
            d.set(v);
            v
        });
        let seq = a.registry.span_seq.fetch_add(1, Ordering::Relaxed);
        let event = SpanEvent {
            name: a.name.to_string(),
            fields: a.fields,
            dur_us,
            depth,
            seq,
        };
        let mut ring = a.registry.spans.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() >= TRACE_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(event);
    }
}

impl Registry {
    /// Enable or disable span recording.
    pub fn set_tracing(&self, on: bool) {
        self.tracing.store(on, Ordering::Relaxed);
    }

    /// Whether spans are being recorded.
    pub fn tracing_enabled(&self) -> bool {
        self.tracing.load(Ordering::Relaxed)
    }

    /// Open a span (prefer the [`crate::span!`] macro). Inactive — a
    /// single atomic load — when tracing is off.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        if !self.tracing_enabled() {
            return SpanGuard { active: None };
        }
        DEPTH.with(|d| d.set(d.get() + 1));
        SpanGuard {
            active: Some(ActiveSpan {
                registry: self,
                name,
                fields: Vec::new(),
                start: Instant::now(),
            }),
        }
    }

    /// The most recent `limit` spans matching `filter`, oldest first.
    pub fn recent_spans(
        &self,
        limit: usize,
        mut filter: impl FnMut(&SpanEvent) -> bool,
    ) -> Vec<SpanEvent> {
        let ring = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        let mut picked: Vec<SpanEvent> = ring
            .iter()
            .rev()
            .filter(|e| filter(e))
            .take(limit)
            .cloned()
            .collect();
        picked.reverse();
        picked
    }

    /// Drop every recorded span.
    pub fn clear_spans(&self) {
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    /// Number of spans currently buffered.
    pub fn span_count(&self) -> usize {
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

// `VecDeque` import is used in the registry struct definition.
#[allow(unused)]
fn _type_check(_: &VecDeque<SpanEvent>) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_only_when_tracing() {
        let r = Registry::new();
        {
            let _s = crate::span!(r, "quiet", proc = 1);
        }
        assert_eq!(r.span_count(), 0, "tracing off records nothing");
        r.set_tracing(true);
        {
            let mut s = crate::span!(r, "access", proc = 3);
            s.field("observed_ms", 42.5);
        }
        let spans = r.recent_spans(10, |_| true);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "access");
        assert_eq!(spans[0].field("proc"), Some(3.0));
        assert_eq!(spans[0].field("observed_ms"), Some(42.5));
        assert_eq!(spans[0].depth, 0);
    }

    #[test]
    fn nested_spans_carry_depth() {
        let r = Registry::new();
        r.set_tracing(true);
        {
            let _outer = crate::span!(r, "access");
            {
                let _inner = crate::span!(r, "recompute");
            }
        }
        let spans = r.recent_spans(10, |_| true);
        assert_eq!(spans.len(), 2);
        // Inner drops first.
        assert_eq!(spans[0].name, "recompute");
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[1].name, "access");
        assert_eq!(spans[1].depth, 0);
        assert!(spans[0].seq < spans[1].seq);
    }

    #[test]
    fn ring_buffer_caps_and_keeps_newest() {
        let r = Registry::new();
        r.set_tracing(true);
        for i in 0..(TRACE_CAPACITY + 10) {
            let _s = crate::span!(r, "op", i = i as f64);
        }
        assert_eq!(r.span_count(), TRACE_CAPACITY);
        let newest = r.recent_spans(1, |_| true);
        assert_eq!(
            newest[0].field("i"),
            Some((TRACE_CAPACITY + 9) as f64),
            "oldest evicted first"
        );
        r.clear_spans();
        assert_eq!(r.span_count(), 0);
    }

    #[test]
    fn recent_spans_filters_and_orders() {
        let r = Registry::new();
        r.set_tracing(true);
        for i in 0..6 {
            let _s = crate::span!(r, "access", proc = (i % 2) as f64);
        }
        let proc1 = r.recent_spans(2, |e| e.field("proc") == Some(1.0));
        assert_eq!(proc1.len(), 2);
        assert!(proc1[0].seq < proc1[1].seq, "oldest first");
        assert!(proc1.iter().all(|e| e.field("proc") == Some(1.0)));
    }

    #[test]
    fn render_is_compact() {
        let e = SpanEvent {
            name: "access".into(),
            fields: vec![("proc", 2.0), ("observed_ms", 90.5)],
            dur_us: 123.4,
            depth: 1,
            seq: 0,
        };
        let s = e.render();
        assert_eq!(s, "  access 123us proc=2 observed_ms=90.50");
    }
}
