//! Request-scoped distributed tracing: span trees, trace contexts, and
//! the slow-query store — plus the original bounded span ring.
//!
//! A span is opened with [`crate::span!`] (or [`Registry::span`]) and
//! recorded when its guard drops. Each event carries the span name, the
//! wall-clock duration, a wall-clock epoch offset (so spans correlate
//! with external logs), the nesting depth on the recording thread, a
//! monotone sequence number, arbitrary named `f64` fields attached by
//! the caller (ledger deltas, predicted/observed costs, row counts) —
//! and, when a [`TraceContext`] is installed on the recording thread,
//! the trace/span/parent ids that link it into a per-request span tree.
//!
//! ## Contexts
//!
//! A server installs a context per request ([`Registry::sample_request`]
//! decides, deterministically from a seed, whether the request is
//! sampled; clients may also supply their own 64-bit trace id). While a
//! context is installed, every span opened on that thread joins the
//! request's tree: the open span becomes the parent of spans opened
//! under it, and crossing a thread boundary is explicit — capture
//! [`Registry::current_context`] into the job closure and re-install it
//! on the worker ([`Registry::install_context`]).
//!
//! When the **root** span of a trace (the one opened with `parent_span
//! == 0`) completes, the whole tree is finalized into a bounded
//! recent-traces ring; trees whose total duration meets the slow
//! threshold are additionally retained in the slow-query log
//! ([`Registry::slow_traces`]), full span tree included.
//!
//! Tracing is off by default: an inactive span is one relaxed atomic
//! load and no allocation, so instrumented hot paths stay hot.

use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::registry::Registry;

/// Default ring-buffer capacity (events; oldest evicted first).
pub const TRACE_CAPACITY: usize = 1024;

/// Most concurrently active (unfinalized) traces retained.
pub const MAX_ACTIVE_TRACES: usize = 128;
/// Most spans retained per trace; later non-root spans are counted as
/// dropped instead (the root always lands, so the trace still closes).
pub const MAX_SPANS_PER_TRACE: usize = 256;
/// Finished-trace ring capacity (the "rest sampled" retention).
pub const FINISHED_TRACES: usize = 64;
/// Slow-query log capacity (threshold-triggered full-tree retention).
pub const SLOW_TRACES: usize = 32;
/// Default slow-query threshold in microseconds.
pub const DEFAULT_SLOW_THRESHOLD_US: f64 = 1000.0;

/// Trace ids are masked to 63 bits so they round-trip through an `i64`
/// procedure argument (`call db.trace(ID)`) without sign surprises.
pub const TRACE_ID_MASK: u64 = (1 << 63) - 1;

/// The request-scoped trace context carried across layers (and, on the
/// v2 wire, across processes): which trace the current work belongs to,
/// which span is the parent of the next span opened, and whether the
/// trace is actually being recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// 64-bit (63 used) trace id; 0 never occurs in a real context.
    pub trace_id: u64,
    /// Span id the next opened span will attach to (0 = it is the root).
    pub parent_span: u64,
    /// Whether spans under this context record (a non-sampled request
    /// still propagates its id so downstream layers agree).
    pub sampled: bool,
}

impl TraceContext {
    /// A root context for `trace_id` (client-supplied ids land here).
    pub fn root(trace_id: u64) -> TraceContext {
        TraceContext {
            trace_id: (trace_id & TRACE_ID_MASK).max(1),
            parent_span: 0,
            sampled: true,
        }
    }
}

/// One recorded span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Span name (e.g. `"access"`, `"recompute"`).
    pub name: String,
    /// Named `f64` fields attached by the instrumented code.
    pub fields: Vec<(&'static str, f64)>,
    /// Wall-clock duration in microseconds.
    pub dur_us: f64,
    /// Nesting depth on the recording thread (0 = outermost).
    pub depth: u32,
    /// Monotone per-registry sequence number (records completion order).
    pub seq: u64,
    /// Trace this span belongs to (0 = no context installed).
    pub trace_id: u64,
    /// This span's id within the registry (unique, allocation order).
    pub span_id: u64,
    /// Parent span id (0 = root of its trace).
    pub parent_id: u64,
    /// Microseconds since the Unix epoch at span open, for correlating
    /// dumped spans with external logs (the monotone clock only gives
    /// relative durations).
    pub wall_us: u64,
}

impl SpanEvent {
    /// Value of a named field, if attached.
    pub fn field(&self, name: &str) -> Option<f64> {
        self.fields
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| *v)
    }

    /// Render the attached fields as ` k=v` pairs (ints without a
    /// fraction, everything else with two decimals).
    fn render_fields(&self, out: &mut String) {
        for (k, v) in &self.fields {
            if (v.fract()).abs() < 1e-9 && v.abs() < 1e15 {
                out.push_str(&format!(" {k}={}", *v as i64));
            } else {
                out.push_str(&format!(" {k}={v:.2}"));
            }
        }
    }

    /// One-line rendering for the shell's `explain` span dump.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:indent$}{} {:.0}us",
            "",
            self.name,
            self.dur_us,
            indent = (self.depth as usize) * 2
        );
        self.render_fields(&mut out);
        out
    }
}

/// A finalized span tree: every span recorded under one trace id, plus
/// the root's totals.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceTree {
    /// The trace id (63-bit, `i64`-safe).
    pub trace_id: u64,
    /// Root span name.
    pub root_name: String,
    /// Root span duration in microseconds (the request's total).
    pub total_us: f64,
    /// Epoch microseconds at the root span's open.
    pub wall_us: u64,
    /// Every retained span, in completion order (children before
    /// parents; link them by `parent_id`).
    pub spans: Vec<SpanEvent>,
    /// Spans discarded once the per-trace cap was hit.
    pub dropped: u32,
}

impl TraceTree {
    /// The root span (parent id 0). Present in every finalized tree.
    pub fn root(&self) -> Option<&SpanEvent> {
        self.spans.iter().find(|s| s.parent_id == 0)
    }

    /// Tree depth: the longest root-to-leaf chain (1 = root only).
    pub fn depth(&self) -> usize {
        let mut best = 0;
        for s in &self.spans {
            let mut d = 1;
            let mut cur = s;
            while cur.parent_id != 0 {
                match self.spans.iter().find(|p| p.span_id == cur.parent_id) {
                    Some(p) => {
                        d += 1;
                        cur = p;
                    }
                    None => break, // dropped ancestor
                }
                if d > self.spans.len() {
                    break; // defensive: corrupt links cannot loop forever
                }
            }
            best = best.max(d);
        }
        best
    }

    /// Render the tree, root first, children indented under their
    /// parents in open (span-id) order, with per-span timings and
    /// fields.
    pub fn render(&self) -> String {
        let mut out = format!(
            "trace {} total {:.0}us spans {}{}\n",
            self.trace_id,
            self.total_us,
            self.spans.len(),
            if self.dropped > 0 {
                format!(" (+{} dropped)", self.dropped)
            } else {
                String::new()
            }
        );
        // children[parent_id] -> spans in open order.
        let mut children: HashMap<u64, Vec<&SpanEvent>> = HashMap::new();
        for s in &self.spans {
            children.entry(s.parent_id).or_default().push(s);
        }
        for v in children.values_mut() {
            v.sort_by_key(|s| s.span_id);
        }
        fn walk(
            out: &mut String,
            children: &HashMap<u64, Vec<&SpanEvent>>,
            id: u64,
            depth: usize,
            left: &mut usize,
        ) {
            let Some(kids) = children.get(&id) else {
                return;
            };
            for s in kids {
                if *left == 0 {
                    return;
                }
                *left -= 1;
                let mut line = format!(
                    "{:indent$}{} {:.0}us",
                    "",
                    s.name,
                    s.dur_us,
                    indent = depth * 2
                );
                s.render_fields(&mut line);
                out.push_str(&line);
                out.push('\n');
                walk(out, children, s.span_id, depth + 1, left);
            }
        }
        let mut left = self.spans.len(); // cycle-proof budget
        walk(&mut out, &children, 0, 1, &mut left);
        // Orphans (ancestor dropped at the cap): rendered flat so the
        // data is never silently hidden.
        let mut seen: Vec<u64> = vec![0];
        for s in &self.spans {
            seen.push(s.span_id);
        }
        for s in &self.spans {
            if !seen.contains(&s.parent_id) {
                out.push_str(&format!("  (orphan) {}\n", s.render()));
            }
        }
        out.trim_end().to_string()
    }
}

/// One active (unfinalized) trace in the store.
#[derive(Debug, Default)]
struct ActiveTrace {
    spans: Vec<SpanEvent>,
    dropped: u32,
}

/// The bounded trace store: active traces accumulate spans until their
/// root completes, then finalize into the recent ring and (over the
/// threshold) the slow-query log.
#[derive(Debug, Default)]
pub(crate) struct TraceStore {
    active: HashMap<u64, ActiveTrace>,
    finished: VecDeque<TraceTree>,
    slow: VecDeque<TraceTree>,
}

impl TraceStore {
    /// Record one span; finalizes the trace when the root arrives.
    fn record(&mut self, event: SpanEvent, slow_threshold_us: f64) {
        let tid = event.trace_id;
        let is_root = event.parent_id == 0;
        if !self.active.contains_key(&tid) && self.active.len() >= MAX_ACTIVE_TRACES {
            // Too many concurrent traces: shed the whole newcomer rather
            // than hold partial state forever.
            return;
        }
        let t = self.active.entry(tid).or_default();
        if t.spans.len() >= MAX_SPANS_PER_TRACE && !is_root {
            t.dropped += 1;
        } else {
            t.spans.push(event.clone());
        }
        if is_root {
            let t = self.active.remove(&tid).unwrap_or_default();
            let tree = TraceTree {
                trace_id: tid,
                root_name: event.name,
                total_us: event.dur_us,
                wall_us: event.wall_us,
                spans: t.spans,
                dropped: t.dropped,
            };
            if tree.total_us >= slow_threshold_us {
                if self.slow.len() >= SLOW_TRACES {
                    self.slow.pop_front();
                }
                self.slow.push_back(tree.clone());
            }
            if self.finished.len() >= FINISHED_TRACES {
                self.finished.pop_front();
            }
            self.finished.push_back(tree);
        }
    }
}

thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// Restores the thread's previous trace context on drop (returned by
/// [`Registry::install_context`]).
pub struct ContextGuard {
    prev: Option<TraceContext>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Holds the master tracing switch on (returned by
/// [`Registry::boost_tracing`]).
pub struct BoostGuard<'r> {
    registry: &'r Registry,
}

impl Drop for BoostGuard<'_> {
    fn drop(&mut self) {
        self.registry.trace_boost.fetch_sub(1, Ordering::Relaxed);
        self.registry.refresh_tracing();
    }
}

/// An open span; records a [`SpanEvent`] into its registry's ring
/// buffer (and, under a sampled context, the trace store) on drop.
pub struct SpanGuard<'r> {
    active: Option<ActiveSpan<'r>>,
}

struct ActiveSpan<'r> {
    registry: &'r Registry,
    name: &'static str,
    fields: Vec<(&'static str, f64)>,
    start: Instant,
    wall_us: u64,
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
}

impl SpanGuard<'_> {
    /// Attach (or append) a named field. No-op when tracing is off.
    pub fn field(&mut self, name: &'static str, value: f64) {
        if let Some(a) = self.active.as_mut() {
            a.fields.push((name, value));
        }
    }

    /// Whether this span is live (tracing was on when it opened).
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

/// Microseconds since the Unix epoch right now.
fn epoch_micros() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// SplitMix64 finalizer: the deterministic id/sampling mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        let dur_us = a.start.elapsed().as_secs_f64() * 1e6;
        let depth = DEPTH.with(|d| {
            let v = d.get().saturating_sub(1);
            d.set(v);
            v
        });
        if a.trace_id != 0 {
            // Re-point the thread's context at this span's parent, so a
            // sibling opened next attaches correctly.
            CURRENT.with(|c| {
                if let Some(mut ctx) = c.get() {
                    if ctx.trace_id == a.trace_id {
                        ctx.parent_span = a.parent_id;
                        c.set(Some(ctx));
                    }
                }
            });
        }
        let seq = a.registry.span_seq.fetch_add(1, Ordering::Relaxed);
        let event = SpanEvent {
            name: a.name.to_string(),
            fields: a.fields,
            dur_us,
            depth,
            seq,
            trace_id: a.trace_id,
            span_id: a.span_id,
            parent_id: a.parent_id,
            wall_us: a.wall_us,
        };
        if a.trace_id != 0 {
            let threshold = a.registry.slow_threshold_us();
            let mut store = a.registry.traces.lock().unwrap_or_else(|e| e.into_inner());
            store.record(event.clone(), threshold);
        }
        let mut ring = a.registry.spans.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() >= TRACE_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(event);
    }
}

impl Registry {
    /// Enable or disable legacy (context-free) span recording — the
    /// `trace on|off` command.
    pub fn set_tracing(&self, on: bool) {
        self.legacy_trace.store(on, Ordering::Relaxed);
        self.refresh_tracing();
    }

    /// Whether spans can currently record at all (legacy tracing on, or
    /// request sampling active).
    pub fn tracing_enabled(&self) -> bool {
        self.tracing.load(Ordering::Relaxed)
    }

    fn refresh_tracing(&self) {
        let on = self.legacy_trace.load(Ordering::Relaxed)
            || self.trace_sample.load(Ordering::Relaxed) > 0
            || self.trace_boost.load(Ordering::Relaxed) > 0;
        self.tracing.store(on, Ordering::Relaxed);
    }

    /// Keep the master tracing switch on while the returned guard lives,
    /// independent of the sampling rate. `explain analyze` and
    /// client-supplied trace ids use this so a single forced trace
    /// records even on a server with sampling off; untraced requests
    /// still see only their usual one-load fast path.
    pub fn boost_tracing(&self) -> BoostGuard<'_> {
        self.trace_boost.fetch_add(1, Ordering::Relaxed);
        self.tracing.store(true, Ordering::Relaxed);
        BoostGuard { registry: self }
    }

    /// Set the request sampling rate: 0 disables request tracing, 1
    /// traces every request, `n` traces one request in `n`
    /// (deterministically, from the seeded request ordinal).
    pub fn set_trace_sample(&self, n: u64) {
        self.trace_sample.store(n, Ordering::Relaxed);
        self.refresh_tracing();
    }

    /// The current sampling rate (0 = request tracing off).
    pub fn trace_sample(&self) -> u64 {
        self.trace_sample.load(Ordering::Relaxed)
    }

    /// Seed the deterministic sampler / trace-id generator.
    pub fn set_trace_seed(&self, seed: u64) {
        self.trace_seed.store(seed, Ordering::Relaxed);
    }

    /// Slow-query threshold in microseconds: a finalized trace whose
    /// root took at least this long is retained, full tree included.
    pub fn slow_threshold_us(&self) -> f64 {
        f64::from_bits(self.slow_threshold_us.load(Ordering::Relaxed))
    }

    /// Change the slow-query threshold (microseconds; 0 retains every
    /// sampled trace).
    pub fn set_slow_threshold_us(&self, us: f64) {
        self.slow_threshold_us
            .store(us.max(0.0).to_bits(), Ordering::Relaxed);
    }

    /// Per-request sampling decision: `None` when the request is not
    /// traced, `Some(root context)` when it is. Deterministic in the
    /// seed and the request ordinal.
    pub fn sample_request(&self) -> Option<TraceContext> {
        let n = self.trace_sample.load(Ordering::Relaxed);
        if n == 0 {
            return None;
        }
        let k = self.trace_counter.fetch_add(1, Ordering::Relaxed);
        let seed = self.trace_seed.load(Ordering::Relaxed);
        let h = splitmix64(seed ^ k);
        if n > 1 && !h.is_multiple_of(n) {
            return None;
        }
        Some(TraceContext::root(splitmix64(h ^ 0xA5A5_5A5A_DEAD_BEEF)))
    }

    /// A fresh always-sampled root context, bypassing the sampler
    /// (`explain analyze` uses this).
    pub fn force_trace(&self) -> TraceContext {
        let k = self.trace_counter.fetch_add(1, Ordering::Relaxed);
        let seed = self.trace_seed.load(Ordering::Relaxed);
        TraceContext::root(splitmix64(seed ^ k ^ 0x5EED_F0F0_0D15_EA5E))
    }

    /// The calling thread's context as a child-capture: what a job
    /// closure should carry to another thread so spans opened there
    /// link under the span currently open here.
    pub fn current_context(&self) -> Option<TraceContext> {
        CURRENT.with(|c| c.get())
    }

    /// Install `ctx` as the calling thread's trace context; the guard
    /// restores the previous context (usually none) on drop.
    pub fn install_context(&self, ctx: TraceContext) -> ContextGuard {
        let prev = CURRENT.with(|c| c.replace(Some(ctx)));
        ContextGuard { prev }
    }

    /// Open a span (prefer the [`crate::span!`] macro). Inactive — a
    /// single atomic load — when tracing is off. Under an installed
    /// sampled context the span joins the request's tree and becomes
    /// the parent of spans opened beneath it on this thread.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        if !self.tracing_enabled() {
            return SpanGuard { active: None };
        }
        let (trace_id, parent_id) = match CURRENT.with(|c| c.get()) {
            Some(ctx) => {
                if !ctx.sampled {
                    return SpanGuard { active: None };
                }
                (ctx.trace_id, ctx.parent_span)
            }
            None => {
                if !self.legacy_trace.load(Ordering::Relaxed) {
                    return SpanGuard { active: None };
                }
                (0, 0)
            }
        };
        let span_id = self.span_ids.fetch_add(1, Ordering::Relaxed) + 1;
        if trace_id != 0 {
            CURRENT.with(|c| {
                c.set(Some(TraceContext {
                    trace_id,
                    parent_span: span_id,
                    sampled: true,
                }))
            });
        }
        DEPTH.with(|d| d.set(d.get() + 1));
        SpanGuard {
            active: Some(ActiveSpan {
                registry: self,
                name,
                fields: Vec::new(),
                start: Instant::now(),
                wall_us: epoch_micros(),
                trace_id,
                span_id,
                parent_id,
            }),
        }
    }

    /// The most recent `limit` spans matching `filter`, oldest first.
    pub fn recent_spans(
        &self,
        limit: usize,
        mut filter: impl FnMut(&SpanEvent) -> bool,
    ) -> Vec<SpanEvent> {
        let ring = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        let mut picked: Vec<SpanEvent> = ring
            .iter()
            .rev()
            .filter(|e| filter(e))
            .take(limit)
            .cloned()
            .collect();
        picked.reverse();
        picked
    }

    /// Drop every recorded span.
    pub fn clear_spans(&self) {
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    /// Number of spans currently buffered.
    pub fn span_count(&self) -> usize {
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// The retained slow-query trees, oldest first.
    pub fn slow_traces(&self) -> Vec<TraceTree> {
        let store = self.traces.lock().unwrap_or_else(|e| e.into_inner());
        store.slow.iter().cloned().collect()
    }

    /// The most recent finalized traces (slow or not), oldest first.
    pub fn finished_traces(&self) -> Vec<TraceTree> {
        let store = self.traces.lock().unwrap_or_else(|e| e.into_inner());
        store.finished.iter().cloned().collect()
    }

    /// Look one finalized trace up by id (slow log first, then the
    /// recent ring).
    pub fn find_trace(&self, trace_id: u64) -> Option<TraceTree> {
        let store = self.traces.lock().unwrap_or_else(|e| e.into_inner());
        store
            .slow
            .iter()
            .rev()
            .find(|t| t.trace_id == trace_id)
            .or_else(|| store.finished.iter().rev().find(|t| t.trace_id == trace_id))
            .cloned()
    }

    /// Drop every finalized and in-flight trace.
    pub fn clear_traces(&self) {
        let mut store = self.traces.lock().unwrap_or_else(|e| e.into_inner());
        store.active.clear();
        store.finished.clear();
        store.slow.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_only_when_tracing() {
        let r = Registry::new();
        {
            let _s = crate::span!(r, "quiet", proc = 1);
        }
        assert_eq!(r.span_count(), 0, "tracing off records nothing");
        r.set_tracing(true);
        {
            let mut s = crate::span!(r, "access", proc = 3);
            s.field("observed_ms", 42.5);
        }
        let spans = r.recent_spans(10, |_| true);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "access");
        assert_eq!(spans[0].field("proc"), Some(3.0));
        assert_eq!(spans[0].field("observed_ms"), Some(42.5));
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[0].trace_id, 0, "no context installed");
        assert!(spans[0].wall_us > 0, "wall clock recorded");
    }

    #[test]
    fn nested_spans_carry_depth() {
        let r = Registry::new();
        r.set_tracing(true);
        {
            let _outer = crate::span!(r, "access");
            {
                let _inner = crate::span!(r, "recompute");
            }
        }
        let spans = r.recent_spans(10, |_| true);
        assert_eq!(spans.len(), 2);
        // Inner drops first.
        assert_eq!(spans[0].name, "recompute");
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[1].name, "access");
        assert_eq!(spans[1].depth, 0);
        assert!(spans[0].seq < spans[1].seq);
    }

    #[test]
    fn ring_buffer_caps_and_keeps_newest() {
        let r = Registry::new();
        r.set_tracing(true);
        for i in 0..(TRACE_CAPACITY + 10) {
            let _s = crate::span!(r, "op", i = i as f64);
        }
        assert_eq!(r.span_count(), TRACE_CAPACITY);
        let newest = r.recent_spans(1, |_| true);
        assert_eq!(
            newest[0].field("i"),
            Some((TRACE_CAPACITY + 9) as f64),
            "oldest evicted first"
        );
        r.clear_spans();
        assert_eq!(r.span_count(), 0);
    }

    #[test]
    fn recent_spans_filters_and_orders() {
        let r = Registry::new();
        r.set_tracing(true);
        for i in 0..6 {
            let _s = crate::span!(r, "access", proc = (i % 2) as f64);
        }
        let proc1 = r.recent_spans(2, |e| e.field("proc") == Some(1.0));
        assert_eq!(proc1.len(), 2);
        assert!(proc1[0].seq < proc1[1].seq, "oldest first");
        assert!(proc1.iter().all(|e| e.field("proc") == Some(1.0)));
    }

    #[test]
    fn render_is_compact() {
        let e = SpanEvent {
            name: "access".into(),
            fields: vec![("proc", 2.0), ("observed_ms", 90.5)],
            dur_us: 123.4,
            depth: 1,
            seq: 0,
            trace_id: 0,
            span_id: 0,
            parent_id: 0,
            wall_us: 0,
        };
        let s = e.render();
        assert_eq!(s, "  access 123us proc=2 observed_ms=90.50");
    }

    #[test]
    fn installed_context_links_spans_into_one_tree() {
        let r = Registry::new();
        r.set_trace_sample(1);
        let ctx = r.force_trace();
        let tid = ctx.trace_id;
        {
            let _g = r.install_context(ctx);
            let _root = crate::span!(r, "wire.request");
            {
                let _child = crate::span!(r, "session.access");
                {
                    let _leaf = crate::span!(r, "pager.read");
                }
                let _leaf2 = crate::span!(r, "pager.read");
            }
            let _sibling = crate::span!(r, "wal.append");
        }
        let tree = r.find_trace(tid).expect("root drop finalizes the tree");
        assert_eq!(tree.spans.len(), 5);
        assert_eq!(tree.root().unwrap().name, "wire.request");
        let root_id = tree.root().unwrap().span_id;
        let by_name = |n: &str| tree.spans.iter().find(|s| s.name == n).unwrap().clone();
        let sess = by_name("session.access");
        assert_eq!(sess.parent_id, root_id);
        assert_eq!(
            by_name("wal.append").parent_id,
            root_id,
            "sibling re-attaches"
        );
        for s in tree.spans.iter().filter(|s| s.name == "pager.read") {
            assert_eq!(s.parent_id, sess.span_id);
        }
        assert_eq!(tree.depth(), 3);
        assert!(tree.render().contains("wire.request"), "{}", tree.render());
    }

    #[test]
    fn context_crosses_threads_by_explicit_capture() {
        let r = std::sync::Arc::new(Registry::new());
        r.set_trace_sample(1);
        let ctx = r.force_trace();
        let tid = ctx.trace_id;
        {
            let _g = r.install_context(ctx);
            let _root = crate::span!(r, "wire.request");
            let captured = r.current_context().expect("context installed");
            assert_eq!(captured.trace_id, tid);
            assert_ne!(captured.parent_span, 0, "root span is the parent now");
            let r2 = r.clone();
            std::thread::spawn(move || {
                let _g = r2.install_context(captured);
                let _w = crate::span!(r2, "shard.worker", shard = 1);
            })
            .join()
            .unwrap();
        }
        let tree = r.find_trace(tid).unwrap();
        let worker = tree
            .spans
            .iter()
            .find(|s| s.name == "shard.worker")
            .unwrap();
        let root = tree.root().unwrap();
        assert_eq!(worker.trace_id, tid);
        assert_eq!(worker.parent_id, root.span_id);
    }

    #[test]
    fn sampling_is_deterministic_and_ratioed() {
        let r = Registry::new();
        r.set_trace_seed(42);
        r.set_trace_sample(4);
        let picks: Vec<bool> = (0..64).map(|_| r.sample_request().is_some()).collect();
        let r2 = Registry::new();
        r2.set_trace_seed(42);
        r2.set_trace_sample(4);
        let picks2: Vec<bool> = (0..64).map(|_| r2.sample_request().is_some()).collect();
        assert_eq!(picks, picks2, "same seed, same decisions");
        let hits = picks.iter().filter(|p| **p).count();
        assert!(
            hits > 0 && hits < 64,
            "1-in-4 sampling is neither none nor all"
        );
        r.set_trace_sample(0);
        assert!(r.sample_request().is_none());
        assert!(!r.tracing_enabled(), "sample 0 + legacy off = fully off");
    }

    #[test]
    fn boost_forces_tracing_on_and_restores() {
        let r = Registry::new();
        assert!(!r.tracing_enabled());
        {
            let _b = r.boost_tracing();
            assert!(r.tracing_enabled());
            let ctx = r.force_trace();
            {
                let _g = r.install_context(ctx);
                let _root = crate::span!(r, "forced");
            }
            assert!(r.find_trace(ctx.trace_id).is_some());
            // No context + legacy off: still inactive under boost.
            let _quiet = crate::span!(r, "quiet");
            assert!(!_quiet.is_recording());
        }
        assert!(!r.tracing_enabled(), "boost released");
    }

    #[test]
    fn slow_threshold_gates_the_slow_log() {
        let r = Registry::new();
        r.set_trace_sample(1);
        r.set_slow_threshold_us(1e9); // nothing is that slow
        {
            let _g = r.install_context(r.force_trace());
            let _root = crate::span!(r, "fast");
        }
        assert_eq!(r.slow_traces().len(), 0);
        assert_eq!(r.finished_traces().len(), 1, "still in the recent ring");
        r.set_slow_threshold_us(0.0); // everything is slow
        let ctx = r.force_trace();
        {
            let _g = r.install_context(ctx);
            let _root = crate::span!(r, "slow");
        }
        let slow = r.slow_traces();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].trace_id, ctx.trace_id);
        assert_eq!(slow[0].root_name, "slow");
        r.clear_traces();
        assert!(r.slow_traces().is_empty() && r.finished_traces().is_empty());
    }

    #[test]
    fn trace_ids_fit_in_i64_and_caps_hold() {
        let r = Registry::new();
        r.set_trace_sample(1);
        for _ in 0..200 {
            let ctx = r.force_trace();
            assert!(ctx.trace_id <= TRACE_ID_MASK && ctx.trace_id > 0);
            let _g = r.install_context(ctx);
            let _root = crate::span!(r, "op");
        }
        assert!(r.finished_traces().len() <= FINISHED_TRACES);
        assert!(r.slow_traces().len() <= SLOW_TRACES);
    }

    #[test]
    fn span_cap_drops_excess_but_keeps_the_root() {
        let r = Registry::new();
        r.set_trace_sample(1);
        r.set_slow_threshold_us(0.0);
        let ctx = r.force_trace();
        {
            let _g = r.install_context(ctx);
            let _root = crate::span!(r, "root");
            for _ in 0..(MAX_SPANS_PER_TRACE + 50) {
                let _leaf = crate::span!(r, "leaf");
            }
        }
        let tree = r.find_trace(ctx.trace_id).unwrap();
        assert!(tree.root().is_some(), "root always retained");
        assert_eq!(tree.spans.len(), MAX_SPANS_PER_TRACE + 1);
        assert_eq!(tree.dropped as usize, 50);
    }
}
