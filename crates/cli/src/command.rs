//! The shell's command language — re-exported from `procdb-server`,
//! where the same grammar doubles as the wire protocol.

pub use procdb_server::command::*;
