//! The interactive session — re-exported from `procdb-server`, where
//! the same state serves concurrent TCP connections.

pub use procdb_server::session::*;
