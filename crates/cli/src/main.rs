//! `procdb-cli`: an interactive shell over the database-procedure engine.
//!
//! ```text
//! cargo run --release -p procdb-cli
//! # or script it:
//! cargo run --release -p procdb-cli < script.pdb
//! ```
//!
//! Type `help` at the prompt for the command language. The `serve`
//! command promotes the current session to a TCP server (same grammar
//! over the wire); when the server is shut down, the session — with any
//! changes clients made — returns to the prompt.

use std::io::{BufRead, Write};

use procdb_cli::{execute, parse, Command, Outcome, Session};
use procdb_server::{Server, ServerConfig};

/// Run one command against the session; `Ok(false)` ends the REPL.
fn run_command(session: &mut Session, cmd: Command) -> Result<bool, String> {
    // `serve` is interactive-only: hand the session to the server, block
    // until a client sends `shutdown`, then take it back.
    if let Command::Serve { port, max_conns } = cmd {
        let owned = std::mem::take(session);
        let server = Server::start(
            owned,
            ServerConfig {
                port,
                max_conns,
                ..ServerConfig::default()
            },
        )
        .map_err(|e| format!("bind failed: {e}"))?;
        println!(
            "serving on {} (max {max_conns} connections); send 'shutdown' to stop",
            server.addr()
        );
        *session = server.run_until_shutdown();
        println!("server stopped; session returned to the prompt");
        return Ok(true);
    }
    match execute(session, cmd)? {
        Outcome::Quit => Ok(false),
        Outcome::Text(text) => {
            if !text.is_empty() {
                println!("{text}");
            }
            Ok(true)
        }
    }
}

fn main() {
    let stdin = std::io::stdin();
    let interactive = atty_stdin();
    let mut session = Session::new();
    println!("procdb-cli — database procedures, four strategies (type 'help')");
    loop {
        if interactive {
            print!("procdb> ");
            std::io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        if !interactive && !line.trim().is_empty() && !line.trim_start().starts_with('#') {
            println!("procdb> {}", line.trim_end());
        }
        match parse(&line) {
            Ok(None) => {}
            Ok(Some(cmd)) => match run_command(&mut session, cmd) {
                Ok(true) => {}
                Ok(false) => break,
                Err(msg) => println!("error: {msg}"),
            },
            Err(msg) => println!("error: {msg}"),
        }
    }
}

/// Crude interactivity probe without extra dependencies: scripts piped on
/// stdin echo their commands; terminals get a prompt. (We treat the
/// presence of the `PROCDB_FORCE_PROMPT` env var as "interactive" and
/// default to echo mode, which is right for tests and CI.)
fn atty_stdin() -> bool {
    std::env::var_os("PROCDB_FORCE_PROMPT").is_some()
}
