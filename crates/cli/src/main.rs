//! `procdb-cli`: an interactive shell over the database-procedure engine.
//!
//! ```text
//! cargo run --release -p procdb-cli
//! # or script it:
//! cargo run --release -p procdb-cli < script.pdb
//! ```
//!
//! Type `help` at the prompt for the command language.

use std::io::{BufRead, Write};

use procdb_cli::{parse, Command, Session, HELP};

fn run_command(session: &mut Session, cmd: Command) -> Result<bool, String> {
    match cmd {
        Command::Quit => return Ok(false),
        Command::Help => println!("{HELP}"),
        Command::CreateTable { name, schema, org } => {
            session.create_table(&name, schema, org)?;
            println!("table {name} created");
        }
        Command::Insert { table, row } => {
            session.insert(&table, row)?;
        }
        Command::DefineView(stmt) => {
            let name = session.define_view(&stmt)?;
            println!("view {name} defined");
        }
        Command::Strategy(kind) => {
            session.set_strategy(kind);
            println!("strategy set to {kind} (engine rebuilds on next access)");
        }
        Command::Access(view) => {
            let (rows, ms) = session.access(&view)?;
            println!("{} rows in {ms:.1} model-ms:", rows.len());
            print!("{}", session.render_rows(&rows, 20));
        }
        Command::Update(victim, new_key) => {
            let (n, ms) = session.update(victim, new_key)?;
            println!("{n} tuple(s) re-keyed {victim} -> {new_key}; maintenance {ms:.1} model-ms");
        }
        Command::Explain(view) => {
            print!("{}", session.explain(&view)?);
        }
        Command::Show => {
            println!("strategy: {}", session.strategy());
            for t in session.tables() {
                println!("  {}", session.table_summary(&t.name).expect("known table"));
            }
            let views: Vec<&str> = session.views().collect();
            println!(
                "  views: {}",
                if views.is_empty() {
                    "(none)".to_string()
                } else {
                    views.join(", ")
                }
            );
        }
        Command::Costs => {
            println!("total charged: {:.1} model-ms", session.total_cost_ms());
        }
    }
    Ok(true)
}

fn main() {
    let stdin = std::io::stdin();
    let interactive = atty_stdin();
    let mut session = Session::new();
    println!("procdb-cli — database procedures, four strategies (type 'help')");
    loop {
        if interactive {
            print!("procdb> ");
            std::io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        if !interactive && !line.trim().is_empty() && !line.trim_start().starts_with('#') {
            println!("procdb> {}", line.trim_end());
        }
        match parse(&line) {
            Ok(None) => {}
            Ok(Some(cmd)) => match run_command(&mut session, cmd) {
                Ok(true) => {}
                Ok(false) => break,
                Err(msg) => println!("error: {msg}"),
            },
            Err(msg) => println!("error: {msg}"),
        }
    }
}

/// Crude interactivity probe without extra dependencies: scripts piped on
/// stdin echo their commands; terminals get a prompt. (We treat the
/// presence of the `PROCDB_FORCE_PROMPT` env var as "interactive" and
/// default to echo mode, which is right for tests and CI.)
fn atty_stdin() -> bool {
    std::env::var_os("PROCDB_FORCE_PROMPT").is_some()
}
