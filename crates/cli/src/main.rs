//! `procdb-cli`: an interactive shell over the database-procedure engine.
//!
//! ```text
//! cargo run --release -p procdb-cli
//! # or script it:
//! cargo run --release -p procdb-cli < script.pdb
//! ```
//!
//! Type `help` at the prompt for the command language. The `serve`
//! command promotes the current session to a TCP server (same grammar
//! over the wire); when the server is shut down, the session — with any
//! changes clients made — returns to the prompt.
//!
//! ```text
//! procdb-cli --v2 HOST:PORT
//! ```
//!
//! connects as a **wire protocol v2** client instead: the same command
//! grammar is typed at the prompt, but every line travels as a binary
//! frame, and `call PROC(args…)` lines use the typed `CALL` opcode — OUT
//! parameters and result rows come back typed and are rendered locally.

use std::io::{BufRead, Write};

use procdb_cli::{execute, parse, Command, Outcome, Session};
use procdb_server::{Server, ServerConfig};
use procdb_wire::{Request, Response, WireClient};

/// Run one command against the session; `Ok(false)` ends the REPL.
fn run_command(session: &mut Session, cmd: Command) -> Result<bool, String> {
    // `serve` is interactive-only: hand the session to the server, block
    // until a client sends `shutdown`, then take it back.
    if let Command::Serve { port, max_conns } = cmd {
        let owned = std::mem::take(session);
        let server = Server::start(
            owned,
            ServerConfig {
                port,
                max_conns,
                ..ServerConfig::default()
            },
        )
        .map_err(|e| format!("bind failed: {e}"))?;
        println!(
            "serving on {} (max {max_conns} connections); send 'shutdown' to stop",
            server.addr()
        );
        *session = server.run_until_shutdown();
        println!("server stopped; session returned to the prompt");
        return Ok(true);
    }
    match execute(session, cmd)? {
        Outcome::Quit => Ok(false),
        Outcome::Text(text) => {
            if !text.is_empty() {
                println!("{text}");
            }
            Ok(true)
        }
    }
}

/// Render one typed value the way the shell prints tuple fields.
fn render_value(v: &procdb_query::Value) -> String {
    match v {
        procdb_query::Value::Int(i) => i.to_string(),
        procdb_query::Value::Bytes(b) => format!("{:?}", String::from_utf8_lossy(b)),
    }
}

/// Print a v2 response the way the v1 shell would, plus the typed parts
/// (`out NAME = VALUE` lines, rendered rows) a `CALL` carries.
fn print_v2_response(resp: &Response) {
    match resp {
        Response::OkText { text } => {
            if !text.is_empty() {
                println!("{text}");
            }
            println!("ok");
        }
        Response::CallOk { text, out, rows } => {
            if !text.is_empty() {
                println!("{text}");
            }
            for (name, v) in out {
                println!("out {name} = {}", render_value(v));
            }
            if !rows.is_empty() {
                println!("{} row(s):", rows.len());
                for row in rows {
                    let fields: Vec<String> = row.iter().map(render_value).collect();
                    println!("  ({})", fields.join(", "));
                }
            }
            println!("ok");
        }
        Response::Error { code, message } => println!("err [{code}] {message}"),
        Response::Bye => println!("ok bye"),
        other => println!("err unexpected response opcode {:#04x}", other.opcode()),
    }
}

/// Send one request carrying an explicit client-chosen trace id and
/// wait for its response (the REPL is serial, so the next matching id
/// is ours).
fn roundtrip_traced(
    client: &mut WireClient,
    req: &Request,
    trace_id: u64,
) -> Result<Response, procdb_wire::WireError> {
    let id = client.send_traced(req, trace_id)?;
    loop {
        let (rid, resp) = client.recv()?;
        if rid == id {
            return Ok(resp);
        }
    }
}

/// The remote v2 REPL: parse each line with the usual grammar so syntax
/// errors stay local, then ship it framed — `call` lines as the typed
/// `CALL` opcode, everything else as a framed command line. The local
/// `traced on`/`traced off` toggle stamps every shipped request with a
/// client-chosen trace id (the v2 TRACED frame flag), printing the id
/// so the server-side tree can be fetched with `call db.trace(ID)`.
fn run_v2(addr: &str) {
    let mut client = match WireClient::connect(addr, 16) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("connect {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", client.greeting());
    println!("connected: {} (v2 framed)", client.banner());
    // Client-side trace ids: distinct per process, monotonically
    // increasing, and well inside the 63-bit id space.
    let mut traced = false;
    let mut next_trace_id: u64 = (std::process::id() as u64) << 24 | 1;
    let stdin = std::io::stdin();
    let interactive = atty_stdin();
    loop {
        if interactive {
            print!("procdb(v2)> ");
            std::io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        if !interactive && !line.trim().is_empty() && !line.trim_start().starts_with('#') {
            println!("procdb(v2)> {}", line.trim_end());
        }
        match line.trim().to_ascii_lowercase().as_str() {
            "traced on" => {
                traced = true;
                println!("client tracing on: every request ships a trace id");
                continue;
            }
            "traced off" => {
                traced = false;
                println!("client tracing off");
                continue;
            }
            _ => {}
        }
        // `shutdown` is a server-level verb the local grammar does not
        // know; ship it raw like a v1 client would.
        if line.trim().eq_ignore_ascii_case("shutdown") {
            match client.roundtrip(&Request::Command {
                line: "shutdown".to_string(),
            }) {
                Ok(resp) => print_v2_response(&resp),
                Err(e) => eprintln!("wire error: {e}"),
            }
            return;
        }
        let req = match parse(&line) {
            Ok(None) => continue,
            Ok(Some(Command::Quit)) => break,
            Ok(Some(Command::Call { name, args })) => Request::Call { name, args },
            Ok(Some(_)) => Request::Command {
                line: line.trim().to_string(),
            },
            Err(msg) => {
                println!("error: {msg}");
                continue;
            }
        };
        let sent = if traced {
            let tid = next_trace_id;
            next_trace_id += 1;
            let r = roundtrip_traced(&mut client, &req, tid);
            if r.is_ok() {
                println!("trace id: {tid} — inspect with `call db.trace({tid})`");
            }
            r
        } else {
            client.roundtrip(&req)
        };
        match sent {
            Ok(resp) => {
                let done = matches!(resp, Response::Bye);
                print_v2_response(&resp);
                if done {
                    return; // server closed (quit/shutdown)
                }
            }
            Err(e) => {
                eprintln!("wire error: {e}");
                break;
            }
        }
    }
    let _ = client.close();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => {}
        [flag, addr] if flag == "--v2" => {
            run_v2(addr);
            return;
        }
        _ => {
            eprintln!("usage: procdb-cli [--v2 HOST:PORT]");
            std::process::exit(2);
        }
    }
    let stdin = std::io::stdin();
    let interactive = atty_stdin();
    let mut session = Session::new();
    println!("procdb-cli — database procedures, four strategies (type 'help')");
    loop {
        if interactive {
            print!("procdb> ");
            std::io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        if !interactive && !line.trim().is_empty() && !line.trim_start().starts_with('#') {
            println!("procdb> {}", line.trim_end());
        }
        match parse(&line) {
            Ok(None) => {}
            Ok(Some(cmd)) => match run_command(&mut session, cmd) {
                Ok(true) => {}
                Ok(false) => break,
                Err(msg) => println!("error: {msg}"),
            },
            Err(msg) => println!("error: {msg}"),
        }
    }
}

/// Crude interactivity probe without extra dependencies: scripts piped on
/// stdin echo their commands; terminals get a prompt. (We treat the
/// presence of the `PROCDB_FORCE_PROMPT` env var as "interactive" and
/// default to echo mode, which is right for tests and CI.)
fn atty_stdin() -> bool {
    std::env::var_os("PROCDB_FORCE_PROMPT").is_some()
}
