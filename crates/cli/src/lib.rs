//! # procdb-cli
//!
//! An interactive shell over the `procdb` database-procedure engine:
//! declare relations, load rows, define procedures in the paper's own
//! `define view` syntax, flip between the four processing strategies, and
//! watch the model-priced cost of every access and update on the ledger.
//!
//! Library surface ([`Session`], [`parse`]) so the shell is scriptable
//! and testable; the `procdb-cli` binary is a thin REPL around it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod command;
pub mod session;

pub use command::{parse, Command, HELP};
pub use session::{Session, SessionError, TableSpec};
