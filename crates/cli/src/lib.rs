//! # procdb-cli
//!
//! An interactive shell over the `procdb` database-procedure engine:
//! declare relations, load rows, define procedures in the paper's own
//! `define view` syntax, flip between the four processing strategies, and
//! watch the model-priced cost of every access and update on the ledger.
//!
//! The command language, session, and executor live in `procdb-server`
//! (the same code answers over TCP — see the `serve` command); this
//! crate re-exports them so `procdb_cli::{Session, parse, …}` keeps
//! working, and ships the `procdb-cli` REPL binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod command;
pub mod session;

pub use command::{parse, Command, HELP};
pub use procdb_server::exec::{execute, Outcome};
pub use session::{Session, SessionError, TableSpec};
