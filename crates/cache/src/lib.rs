//! # procdb-cache
//!
//! A front result cache with delta-stream invalidation — the paper's
//! Cache & Invalidate strategy generalized from one engine's view cache
//! to a web-scale tier in front of the whole database (Łopuszański's
//! single-table invalidation scheme, PAPERS.md).
//!
//! [`ResultCache`] memoizes rendered procedure-access responses keyed
//! by procedure name, in a sharded hash map consulted on the access
//! path *before* any session or shard engine lock: a hit serves the
//! cached bytes with zero engine locking. Correctness rests on a
//! guard lattice, not on locking the engine:
//!
//! * **Version guards.** Every entry records, per shard, the replica
//!   group's `(epoch, LSN)` watermark captured *before* the fill's
//!   engine read ran ([`ResultCache::begin_fill`]). An entry is served
//!   only while each shard's current epoch still equals the guard's
//!   and no overlapping delta has committed past the guard LSN.
//! * **Delta-stream invalidation.** The cache subscribes to each
//!   replica group's committed [`DeltaOp`] stream
//!   ([`DeltaObserver`]) — the same LSN-stamped log replication ships.
//!   Each delta's key span is probed against the procedures'
//!   selection intervals using [`ILockManager`] interval conflict
//!   detection (the paper's i-locks, re-purposed as the cache tier's
//!   predicate index): only overlapping results are killed.
//! * **Epoch fences.** A promotion bumps the group epoch
//!   ([`DeltaObserver::on_epoch_bump`]); the cache flash-invalidates
//!   every entry guarding the old epoch, so a promoted follower can
//!   never satisfy a guard minted under the fenced primary.
//!
//! Fills are racy by construction (the engine read runs outside the
//! cache's locks); the ticket protocol makes the race safe: selection
//! intervals are registered *before* any fill can run, so a delta that
//! commits between ticket and store leaves a kill mark the store-side
//! validation sees, and the fill is discarded rather than cached. The
//! serve path validates once and serves exactly what validation saw,
//! so `procdb_cache_stale_served_total` stays zero by construction —
//! the counter exists to falsify that claim under chaos testing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use parking_lot::RwLock;
use procdb_core::{DeltaObserver, DeltaOp};
use procdb_ilock::{ILockManager, ProcId, TableRef};
use procdb_obs::{span, Counter, Gauge};
use procdb_query::Value;

/// Number of independent entry buckets (hash-sharded to keep readers
/// and the invalidation sweep from serializing on one map lock).
const BUCKETS: usize = 16;

/// Default time-to-live for a cached result. Guards handle
/// correctness; the TTL only bounds how long a result for a procedure
/// nobody writes near can pin memory.
pub const DEFAULT_TTL: Duration = Duration::from_secs(300);

/// The base relation's table number in the predicate index. The cache
/// fronts procedure results over `R1` selections, matching the
/// replication stream, which ships `R1` mutations per shard.
const BASE_TABLE: TableRef = TableRef(0);

struct Metrics {
    hits: Counter,
    misses: Counter,
    fills: Counter,
    invalidations: Counter,
    stale_served: Counter,
    hit_ratio: Gauge,
    entries: Gauge,
    bytes: Gauge,
}

fn metrics() -> &'static Metrics {
    static M: OnceLock<Metrics> = OnceLock::new();
    M.get_or_init(|| {
        let reg = procdb_obs::global();
        Metrics {
            hits: reg.counter("procdb_cache_hits_total", &[]),
            misses: reg.counter("procdb_cache_misses_total", &[]),
            fills: reg.counter("procdb_cache_fills_total", &[]),
            invalidations: reg.counter("procdb_cache_invalidations_total", &[]),
            stale_served: reg.counter("procdb_cache_stale_served_total", &[]),
            hit_ratio: reg.gauge("procdb_cache_hit_ratio", &[]),
            entries: reg.gauge("procdb_cache_entries", &[]),
            bytes: reg.gauge("procdb_cache_bytes", &[]),
        }
    })
}

/// One cached, fully rendered procedure-access response.
struct Entry {
    /// Rendered response body, served verbatim on a hit.
    body: String,
    /// Row count the body renders (surfaced by `db.cache()`).
    rows: usize,
    /// Flash generation the entry was filled under.
    generation: u64,
    /// Per-shard `(epoch, lsn)` watermarks captured at ticket time.
    guards: Vec<(u64, u64)>,
    /// Fill wall-clock time, for TTL expiry.
    filled_at: Instant,
}

/// Per-shard replica-group watermark as the cache last observed it.
#[derive(Debug, Clone, Copy, Default)]
struct Watermark {
    epoch: u64,
    lsn: u64,
}

/// Validation + invalidation state, under one reader-writer lock:
/// lookups take it shared, fills and delta notifications exclusive.
struct Meta {
    /// Flash-invalidation generation (bumped by [`ResultCache::flash_all`]).
    generation: u64,
    /// Highest `(epoch, lsn)` seen per shard.
    watermarks: Vec<Watermark>,
    /// Selection intervals per procedure — the i-lock predicate index.
    index: ILockManager,
    /// Dense `ProcId` assignment: position = id, value = procedure name.
    procs: Vec<String>,
    /// Kill marks: `(proc id, shard)` → LSN of the latest overlapping
    /// delta. An entry's guard LSN must be `>=` the mark to be served.
    kill: HashMap<(u32, usize), u64>,
    /// Column index of the `R1` key field (for `Insert` key extraction).
    key_field: usize,
}

impl Meta {
    fn proc_id(&self, name: &str) -> Option<u32> {
        self.procs.iter().position(|p| p == name).map(|i| i as u32)
    }

    fn kill_lsn(&self, proc: u32, shard: usize) -> u64 {
        self.kill.get(&(proc, shard)).copied().unwrap_or(0)
    }
}

/// Point-in-time snapshot of one shard's cache watermark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardWatermark {
    /// Replica-group epoch the cache last observed for the shard.
    pub epoch: u64,
    /// Highest delta LSN the cache has been notified of.
    pub lsn: u64,
}

/// Counters + occupancy snapshot returned by [`ResultCache::stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct CacheStats {
    /// Whether the cache is currently serving.
    pub enabled: bool,
    /// Live entries across all buckets.
    pub entries: usize,
    /// Total rendered-body bytes held.
    pub bytes: usize,
    /// Lifetime hits.
    pub hits: u64,
    /// Lifetime misses (including guard-failed and TTL-expired).
    pub misses: u64,
    /// Lifetime successful fills.
    pub fills: u64,
    /// Lifetime entries removed by delta/epoch/flash invalidation.
    pub invalidations: u64,
    /// Entries served despite a failed guard — zero by construction.
    pub stale_served: u64,
    /// `hits / (hits + misses)`, zero when no lookups yet.
    pub hit_ratio: f64,
    /// Per-shard watermarks, for invalidation-lag introspection.
    pub per_shard: Vec<ShardWatermark>,
}

/// Fill ticket: the guard snapshot captured *before* the engine read.
///
/// Pass it back to [`ResultCache::try_fill`] with the rendered result;
/// the store validates that no overlapping delta and no epoch change
/// slipped in while the read ran.
#[derive(Debug, Clone)]
pub struct FillTicket {
    generation: u64,
    guards: Vec<(u64, u64)>,
}

/// The front result cache. One instance fronts one [`Session`]'s
/// engine; all methods take `&self` and are safe to call concurrently
/// from connection threads and the replication layer.
///
/// [`Session`]: https://docs.rs/procdb-server
pub struct ResultCache {
    enabled: AtomicBool,
    ttl: RwLock<Duration>,
    meta: RwLock<Meta>,
    buckets: Vec<RwLock<HashMap<String, Entry>>>,
}

impl Default for ResultCache {
    fn default() -> ResultCache {
        ResultCache::new()
    }
}

impl ResultCache {
    /// Empty, disabled cache for a single-shard layout.
    pub fn new() -> ResultCache {
        ResultCache {
            enabled: AtomicBool::new(false),
            ttl: RwLock::new(DEFAULT_TTL),
            meta: RwLock::new(Meta {
                generation: 0,
                watermarks: vec![Watermark::default()],
                index: ILockManager::new(),
                procs: Vec::new(),
                kill: HashMap::new(),
                key_field: 0,
            }),
            buckets: (0..BUCKETS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn bucket(&self, key: &str) -> &RwLock<HashMap<String, Entry>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.buckets[(h.finish() as usize) % BUCKETS]
    }

    /// (Re)configure for an engine layout: `shards` replica groups with
    /// the given starting epochs, `R1` keyed on column `key_field`, and
    /// each procedure's selection interval registered in the predicate
    /// index. Clears all entries and kill marks — the engine was just
    /// (re)built, so nothing cached can be trusted across the call.
    ///
    /// Intervals are registered here, before any fill can run, which is
    /// what makes the fill race safe: a delta that lands between a
    /// ticket and its store always finds the interval and leaves a kill
    /// mark the store-side validation checks.
    pub fn configure(&self, epochs: &[u64], key_field: usize, procs: &[(String, i64, i64)]) {
        let mut meta = self.meta.write();
        meta.watermarks = epochs
            .iter()
            .map(|&epoch| Watermark { epoch, lsn: 0 })
            .collect();
        if meta.watermarks.is_empty() {
            meta.watermarks.push(Watermark::default());
        }
        meta.key_field = key_field;
        meta.index.clear();
        meta.procs.clear();
        meta.kill.clear();
        for (i, (name, lo, hi)) in procs.iter().enumerate() {
            meta.procs.push(name.clone());
            meta.index
                .set_range_lock(BASE_TABLE, *lo, *hi, ProcId(i as u32));
        }
        drop(meta);
        self.clear_entries();
    }

    /// Turn the cache on or off. Disabling stops serving and filling
    /// but keeps invalidation tracking live, so re-enabling is safe
    /// without a flush.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::SeqCst);
    }

    /// Is the cache serving?
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::SeqCst)
    }

    /// Override the entry TTL (tests shrink it to exercise expiry).
    pub fn set_ttl(&self, ttl: Duration) {
        *self.ttl.write() = ttl;
    }

    /// Serve `proc`'s cached response if present and valid. This is the
    /// whole no-engine-lock hit path: two reader locks inside the cache,
    /// no session or shard lock anywhere.
    ///
    /// Validation and serve are one critical section — the entry
    /// cloned is the entry validated, so a stale result is never
    /// served (any racing delta either killed the entry before we read
    /// it, or commits after our guards were checked, which is an
    /// ordinary read-write race the serial order resolves in our
    /// favor).
    pub fn lookup(&self, proc: &str) -> Option<String> {
        if !self.is_enabled() {
            return None;
        }
        let m = metrics();
        let reg = procdb_obs::global();
        let mut sp = span!(reg, "cache.lookup");
        let ttl = *self.ttl.read();
        let meta = self.meta.read();
        let hit = {
            let bucket = self.bucket(proc).read();
            match bucket.get(proc) {
                Some(e) if Self::valid(&meta, proc, e, ttl) => Some(e.body.clone()),
                _ => None,
            }
        };
        drop(meta);
        sp.field("hit", if hit.is_some() { 1.0 } else { 0.0 });
        match &hit {
            Some(_) => m.hits.inc(),
            None => m.misses.inc(),
        }
        let (h, mi) = (m.hits.get(), m.misses.get());
        if h + mi > 0 {
            m.hit_ratio.set(h as f64 / (h + mi) as f64);
        }
        hit
    }

    fn valid(meta: &Meta, proc: &str, e: &Entry, ttl: Duration) -> bool {
        if e.generation != meta.generation || e.filled_at.elapsed() > ttl {
            return false;
        }
        let Some(pid) = meta.proc_id(proc) else {
            return false;
        };
        if e.guards.len() != meta.watermarks.len() {
            return false;
        }
        e.guards.iter().enumerate().all(|(s, &(epoch, lsn))| {
            meta.watermarks[s].epoch == epoch && lsn >= meta.kill_lsn(pid, s)
        })
    }

    /// Snapshot the guard lattice before running the engine read that
    /// will produce the result. Returns `None` when the cache is off
    /// (no point paying for the snapshot).
    pub fn begin_fill(&self) -> Option<FillTicket> {
        if !self.is_enabled() {
            return None;
        }
        let meta = self.meta.read();
        Some(FillTicket {
            generation: meta.generation,
            guards: meta.watermarks.iter().map(|w| (w.epoch, w.lsn)).collect(),
        })
    }

    /// Store a rendered result under `proc` if the ticket still
    /// validates: same generation, same per-shard epochs, and no kill
    /// mark past the ticket's LSNs. Deadline-aware: an expired request
    /// budget skips the store (the caller is already over budget; the
    /// write lock isn't worth it). Returns whether the fill stuck.
    pub fn try_fill(&self, proc: &str, ticket: &FillTicket, body: String, rows: usize) -> bool {
        if !self.is_enabled() || procdb_obs::deadline_expired() {
            return false;
        }
        let m = metrics();
        let reg = procdb_obs::global();
        let mut sp = span!(reg, "cache.fill", bytes = body.len());
        let meta = self.meta.write();
        let ok = meta.generation == ticket.generation
            && ticket.guards.len() == meta.watermarks.len()
            && meta.proc_id(proc).is_some_and(|pid| {
                ticket.guards.iter().enumerate().all(|(s, &(epoch, lsn))| {
                    meta.watermarks[s].epoch == epoch && lsn >= meta.kill_lsn(pid, s)
                })
            });
        sp.field("stored", if ok { 1.0 } else { 0.0 });
        if !ok {
            return false;
        }
        let entry = Entry {
            body,
            rows,
            generation: ticket.generation,
            guards: ticket.guards.clone(),
            filled_at: Instant::now(),
        };
        // Bucket write nests inside the meta lock (meta → bucket is the
        // crate-wide lock order), so no delta can race the store.
        self.bucket(proc).write().insert(proc.to_string(), entry);
        drop(meta);
        m.fills.inc();
        self.refresh_occupancy();
        true
    }

    /// Invalidate everything: bump the flash generation and drop all
    /// entries. Used when the engine is rebuilt, a crash is injected,
    /// or a broadcast inner-relation update arrives (which the per-key
    /// predicate index deliberately does not model).
    pub fn flash_all(&self) {
        {
            let mut meta = self.meta.write();
            meta.generation += 1;
            meta.kill.clear();
        }
        self.clear_entries();
    }

    fn clear_entries(&self) {
        let mut dropped = 0u64;
        for b in &self.buckets {
            let mut b = b.write();
            dropped += b.len() as u64;
            b.clear();
        }
        if dropped > 0 {
            metrics().invalidations.add(dropped);
        }
        self.refresh_occupancy();
    }

    /// A committed write on the single-engine backend (no replication
    /// stream to observe): synthesize the next LSN on shard 0 and run
    /// the same invalidation path a shipped delta would.
    pub fn note_local_write(&self, op: &DeltaOp) {
        let (epoch, lsn) = {
            let meta = self.meta.read();
            let w = meta.watermarks[0];
            (w.epoch, w.lsn + 1)
        };
        self.apply_delta(0, epoch, lsn, op);
    }

    /// Shared delta/invalidation path (observer calls land here).
    fn apply_delta(&self, shard: usize, epoch: u64, lsn: u64, op: &DeltaOp) {
        let reg = procdb_obs::global();
        let mut meta = self.meta.write();
        if shard >= meta.watermarks.len() {
            return;
        }
        let w = &mut meta.watermarks[shard];
        w.epoch = w.epoch.max(epoch);
        w.lsn = w.lsn.max(lsn);
        let key_field = meta.key_field;

        // Key span the delta touches: both sides of a re-key, the key
        // column of inserts, the listed delete keys.
        let mut keys: Vec<i64> = Vec::new();
        match op {
            DeltaOp::Rekey(mods) => {
                for &(victim, new_key) in mods {
                    keys.push(victim);
                    keys.push(new_key);
                }
            }
            DeltaOp::Insert(rows) => {
                for row in rows {
                    if let Some(Value::Int(k)) = row.get(key_field) {
                        keys.push(*k);
                    }
                }
            }
            DeltaOp::Delete(ks) => keys.extend_from_slice(ks),
            DeltaOp::RekeyIn { .. } => {
                // Inner-relation broadcast: the predicate index only
                // tracks R1 key intervals, so every derived result is
                // suspect — flash the lot.
                let mut sp = span!(reg, "cache.invalidate", shard = shard);
                sp.field("flash", 1.0);
                drop(meta);
                self.flash_all();
                return;
            }
        }
        if keys.is_empty() {
            return;
        }
        let victims = meta
            .index
            .conflicting_any(keys.into_iter().map(|k| (BASE_TABLE, k)));
        if victims.is_empty() {
            return;
        }
        let mut sp = span!(reg, "cache.invalidate", shard = shard, lsn = lsn);
        sp.field("procs", victims.len() as f64);
        let mut removed = 0u64;
        for pid in victims {
            let mark = meta.kill.entry((pid.0, shard)).or_insert(0);
            *mark = (*mark).max(lsn);
            let name = meta.procs[pid.0 as usize].clone();
            // Eager removal (still inside the meta lock, honoring the
            // meta → bucket order): frees memory and makes the
            // invalidation observable; the kill mark covers in-flight
            // fills that raced this delta.
            let mut bucket = self.bucket(&name).write();
            let kill_it = match bucket.get(&name) {
                Some(e) => !matches!(e.guards.get(shard), Some(&(_, glsn)) if glsn >= lsn),
                None => false,
            };
            if kill_it {
                bucket.remove(&name);
                removed += 1;
            }
        }
        drop(meta);
        if removed > 0 {
            metrics().invalidations.add(removed);
            self.refresh_occupancy();
        }
    }

    fn apply_epoch_bump(&self, shard: usize, epoch: u64) {
        let reg = procdb_obs::global();
        let mut meta = self.meta.write();
        if shard >= meta.watermarks.len() {
            return;
        }
        let w = &mut meta.watermarks[shard];
        w.epoch = w.epoch.max(epoch);
        let fence = w.epoch;
        let mut sp = span!(reg, "cache.invalidate", shard = shard, epoch = fence);
        // Sweep every entry whose guard predates the fence: the old
        // primary that produced it can no longer be trusted.
        let mut removed = 0u64;
        for b in &self.buckets {
            let mut b = b.write();
            let before = b.len();
            b.retain(|_, e| match e.guards.get(shard) {
                Some(&(gep, _)) => gep >= fence,
                None => false,
            });
            removed += (before - b.len()) as u64;
        }
        drop(meta);
        sp.field("fenced", removed as f64);
        if removed > 0 {
            metrics().invalidations.add(removed);
        }
        self.refresh_occupancy();
    }

    fn refresh_occupancy(&self) {
        let m = metrics();
        let mut entries = 0usize;
        let mut bytes = 0usize;
        for b in &self.buckets {
            let b = b.read();
            entries += b.len();
            bytes += b.values().map(|e| e.body.len()).sum::<usize>();
        }
        m.entries.set(entries as f64);
        m.bytes.set(bytes as f64);
    }

    /// Counter + occupancy snapshot (the `cache stats` / `db.cache()`
    /// backing data).
    pub fn stats(&self) -> CacheStats {
        let m = metrics();
        let (hits, misses) = (m.hits.get(), m.misses.get());
        let meta = self.meta.read();
        let per_shard = meta
            .watermarks
            .iter()
            .map(|w| ShardWatermark {
                epoch: w.epoch,
                lsn: w.lsn,
            })
            .collect();
        drop(meta);
        let mut entries = 0usize;
        let mut bytes = 0usize;
        for b in &self.buckets {
            let b = b.read();
            entries += b.len();
            bytes += b.values().map(|e| e.body.len()).sum::<usize>();
        }
        CacheStats {
            enabled: self.is_enabled(),
            entries,
            bytes,
            hits,
            misses,
            fills: m.fills.get(),
            invalidations: m.invalidations.get(),
            stale_served: m.stale_served.get(),
            hit_ratio: if hits + misses > 0 {
                hits as f64 / (hits + misses) as f64
            } else {
                0.0
            },
            per_shard,
        }
    }

    /// Cached row counts per live entry, for `db.cache()` introspection.
    pub fn entries_overview(&self) -> Vec<(String, usize, usize)> {
        let mut out = Vec::new();
        for b in &self.buckets {
            let b = b.read();
            for (name, e) in b.iter() {
                out.push((name.clone(), e.rows, e.body.len()));
            }
        }
        out.sort();
        out
    }
}

impl DeltaObserver for ResultCache {
    fn on_delta(&self, shard: usize, epoch: u64, lsn: u64, op: &DeltaOp) {
        self.apply_delta(shard, epoch, lsn, op);
    }

    fn on_epoch_bump(&self, shard: usize, epoch: u64) {
        self.apply_epoch_bump(shard, epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_with(procs: &[(&str, i64, i64)]) -> ResultCache {
        let c = ResultCache::new();
        c.configure(
            &[1],
            0,
            &procs
                .iter()
                .map(|&(n, lo, hi)| (n.to_string(), lo, hi))
                .collect::<Vec<_>>(),
        );
        c.set_enabled(true);
        c
    }

    fn fill(c: &ResultCache, name: &str, body: &str) -> bool {
        let t = c.begin_fill().expect("enabled");
        c.try_fill(name, &t, body.to_string(), 1)
    }

    #[test]
    fn disabled_cache_serves_nothing() {
        let c = ResultCache::new();
        assert!(c.begin_fill().is_none());
        assert!(c.lookup("P1").is_none());
    }

    #[test]
    fn fill_then_hit_then_overlapping_delta_kills() {
        let c = cache_with(&[("P1", 10, 20), ("P2", 50, 60)]);
        assert!(fill(&c, "P1", "one"));
        assert!(fill(&c, "P2", "two"));
        assert_eq!(c.lookup("P1").as_deref(), Some("one"));
        // Delta inside P1's interval kills P1 only.
        c.note_local_write(&DeltaOp::Delete(vec![15]));
        assert!(c.lookup("P1").is_none());
        assert_eq!(c.lookup("P2").as_deref(), Some("two"));
    }

    #[test]
    fn non_overlapping_delta_leaves_entry_alone() {
        let c = cache_with(&[("P1", 10, 20)]);
        assert!(fill(&c, "P1", "one"));
        c.note_local_write(&DeltaOp::Delete(vec![999]));
        assert_eq!(c.lookup("P1").as_deref(), Some("one"));
    }

    #[test]
    fn rekey_probes_both_sides() {
        let c = cache_with(&[("P1", 10, 20)]);
        assert!(fill(&c, "P1", "one"));
        // Victim outside, new key inside: still a kill.
        c.note_local_write(&DeltaOp::Rekey(vec![(500, 15)]));
        assert!(c.lookup("P1").is_none());
        assert!(fill(&c, "P1", "one"));
        // Victim inside, new key outside: also a kill.
        c.note_local_write(&DeltaOp::Rekey(vec![(12, 500)]));
        assert!(c.lookup("P1").is_none());
    }

    #[test]
    fn insert_extracts_key_field() {
        let c = cache_with(&[("P1", 10, 20)]);
        assert!(fill(&c, "P1", "one"));
        c.note_local_write(&DeltaOp::Insert(vec![vec![
            Value::Int(11),
            Value::Bytes(vec![0; 4]),
        ]]));
        assert!(c.lookup("P1").is_none());
    }

    #[test]
    fn rekey_in_flashes_everything() {
        let c = cache_with(&[("P1", 10, 20), ("P2", 50, 60)]);
        assert!(fill(&c, "P1", "one"));
        assert!(fill(&c, "P2", "two"));
        c.note_local_write(&DeltaOp::RekeyIn {
            relation: "R2".into(),
            mods: vec![(1, 2)],
        });
        assert!(c.lookup("P1").is_none());
        assert!(c.lookup("P2").is_none());
    }

    #[test]
    fn delta_between_ticket_and_store_discards_fill() {
        let c = cache_with(&[("P1", 10, 20)]);
        let t = c.begin_fill().expect("enabled");
        // The engine read is "running" here; an overlapping delta
        // commits before the result is stored.
        c.note_local_write(&DeltaOp::Delete(vec![15]));
        assert!(
            !c.try_fill("P1", &t, "stale".into(), 1),
            "raced fill rejected"
        );
        assert!(c.lookup("P1").is_none());
    }

    #[test]
    fn non_overlapping_delta_between_ticket_and_store_keeps_fill() {
        let c = cache_with(&[("P1", 10, 20)]);
        let t = c.begin_fill().expect("enabled");
        c.note_local_write(&DeltaOp::Delete(vec![999]));
        assert!(c.try_fill("P1", &t, "fresh".into(), 1));
        assert_eq!(c.lookup("P1").as_deref(), Some("fresh"));
    }

    #[test]
    fn epoch_bump_fences_old_guards() {
        let c = ResultCache::new();
        c.configure(&[1, 1], 0, &[("P1".to_string(), 10, 20)]);
        c.set_enabled(true);
        assert!(fill(&c, "P1", "one"));
        c.on_epoch_bump(1, 2);
        assert!(c.lookup("P1").is_none(), "promotion fences the entry");
        // A fresh fill under the new epoch serves fine.
        assert!(fill(&c, "P1", "two"));
        assert_eq!(c.lookup("P1").as_deref(), Some("two"));
    }

    #[test]
    fn epoch_bump_during_fill_discards() {
        let c = cache_with(&[("P1", 10, 20)]);
        let t = c.begin_fill().expect("enabled");
        c.on_epoch_bump(0, 7);
        assert!(!c.try_fill("P1", &t, "stale".into(), 1));
    }

    #[test]
    fn flash_all_and_generation() {
        let c = cache_with(&[("P1", 10, 20)]);
        assert!(fill(&c, "P1", "one"));
        c.flash_all();
        assert!(c.lookup("P1").is_none());
        let t = c.begin_fill().expect("enabled");
        assert!(
            c.try_fill("P1", &t, "new".into(), 1),
            "post-flash ticket fills"
        );
        assert_eq!(c.lookup("P1").as_deref(), Some("new"));
    }

    #[test]
    fn stale_ticket_across_flash_discards() {
        let c = cache_with(&[("P1", 10, 20)]);
        let t = c.begin_fill().expect("enabled");
        c.flash_all();
        assert!(!c.try_fill("P1", &t, "stale".into(), 1));
    }

    #[test]
    fn ttl_expiry_is_a_miss() {
        let c = cache_with(&[("P1", 10, 20)]);
        c.set_ttl(Duration::ZERO);
        assert!(fill(&c, "P1", "one"));
        std::thread::sleep(Duration::from_millis(2));
        assert!(c.lookup("P1").is_none());
    }

    #[test]
    fn expired_deadline_skips_fill() {
        let c = cache_with(&[("P1", 10, 20)]);
        let t = c.begin_fill().expect("enabled");
        let past = Instant::now() - Duration::from_millis(1);
        let _g = procdb_obs::install_deadline(past);
        assert!(!c.try_fill("P1", &t, "late".into(), 1));
    }

    #[test]
    fn stats_track_occupancy_and_watermarks() {
        let c = cache_with(&[("P1", 10, 20)]);
        assert!(fill(&c, "P1", "four"));
        let _ = c.lookup("P1");
        let s = c.stats();
        assert!(s.enabled);
        assert_eq!(s.entries, 1);
        assert_eq!(s.bytes, 4);
        assert_eq!(s.stale_served, 0);
        assert_eq!(s.per_shard.len(), 1);
        c.note_local_write(&DeltaOp::Delete(vec![15]));
        let s = c.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.per_shard[0].lsn, 1);
        let over = c.entries_overview();
        assert!(over.is_empty());
    }

    #[test]
    fn reconfigure_drops_entries() {
        let c = cache_with(&[("P1", 10, 20)]);
        assert!(fill(&c, "P1", "one"));
        c.configure(&[1, 1, 1], 0, &[("P1".to_string(), 10, 20)]);
        assert!(c.lookup("P1").is_none());
        let s = c.stats();
        assert_eq!(s.per_shard.len(), 3);
    }
}
