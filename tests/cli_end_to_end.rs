//! End-to-end test of the `procdb-cli` binary: feed it a script on stdin
//! and check the transcript, exactly as a user would drive it.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_script(script: &str) -> String {
    // Resolve the binary next to the test executable (target/debug).
    let mut path = std::env::current_exe().expect("test exe path");
    path.pop(); // deps/
    path.pop(); // debug/
    path.push(format!("procdb-cli{}", std::env::consts::EXE_SUFFIX));
    let mut child = Command::new(&path)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| panic!("spawn {path:?}: {e}"));
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(script.as_bytes())
        .expect("write script");
    let out = child.wait_with_output().expect("cli runs");
    assert!(out.status.success(), "cli exited with {:?}", out.status);
    String::from_utf8_lossy(&out.stdout).into_owned()
}

const SCRIPT: &str = r#"
create table EMP (eid int, dept int, job bytes 12) btree eid
create table DEPT (dname int, floor int) hash dname
insert DEPT (0, 1)
insert DEPT (1, 2)
insert EMP (1, 0, "Programmer")
insert EMP (2, 0, "Clerk")
insert EMP (3, 1, "Programmer")
define view PROGS1 (EMP.all, DEPT.all) where EMP.dept = DEPT.dname and EMP.job = "Programmer" and DEPT.floor = 1
strategy rvm
show
access PROGS1
insert EMP (5, 0, "Programmer")
access PROGS1
update 5 -> 6
access PROGS1
costs
quit
"#;

#[test]
fn scripted_session_transcript() {
    let out = run_script(SCRIPT);
    assert!(out.contains("table EMP created"), "{out}");
    assert!(out.contains("view PROGS1 defined"), "{out}");
    assert!(out.contains("strategy set to UpdateCache-RVM"), "{out}");
    assert!(out.contains("EMP (3 rows, btree on eid)"), "{out}");
    assert!(out.contains("DEPT (2 rows, hash on dname)"), "{out}");
    // First access: only employee 1 qualifies.
    assert!(out.contains("1 rows in"), "{out}");
    // After the live insert the view is maintained to 2 rows.
    assert!(out.contains("2 rows in"), "{out}");
    // The re-keyed tuple shows its new key.
    assert!(out.contains("(6, 0, \"Programmer\", 0, 1)"), "{out}");
    assert!(out.contains("total charged:"), "{out}");
}

#[test]
fn errors_do_not_kill_the_session() {
    let out = run_script(
        "frobnicate\naccess nothing\ncreate table T (x int) btree x\n\
         insert T (1, 2)\nstrategy nope\nhelp\nquit\n",
    );
    assert!(out.contains("error: unknown command"), "{out}");
    assert!(out.contains("error: unknown view nothing"), "{out}");
    assert!(out.contains("error: arity mismatch"), "{out}");
    assert!(out.contains("error: unknown strategy"), "{out}");
    assert!(out.contains("commands:"), "help still works: {out}");
    assert!(out.contains("table T created"), "{out}");
}

#[test]
fn strategy_comparison_same_answers() {
    let base = r#"
create table EMP (eid int, dept int) btree eid
insert EMP (1, 0)
insert EMP (2, 1)
insert EMP (3, 0)
define view V (EMP.all) where EMP.eid >= 2
"#;
    let mut transcripts = Vec::new();
    for strat in ["recompute", "cache", "avm", "rvm"] {
        let script = format!("{base}\nstrategy {strat}\naccess V\nquit\n");
        let out = run_script(&script);
        let rows: Vec<&str> = out
            .lines()
            .skip_while(|l| !l.contains("rows in"))
            .skip(1)
            .take_while(|l| l.starts_with("  ("))
            .collect();
        transcripts.push((strat, rows.join("\n")));
    }
    let first = transcripts[0].1.clone();
    assert!(
        first.contains("(2, 1)") && first.contains("(3, 0)"),
        "{first}"
    );
    for (strat, rows) in &transcripts {
        assert_eq!(rows, &first, "strategy {strat} returned different rows");
    }
}
