//! Predicted-vs-observed cost accounting: the per-access prediction the
//! engine publishes next to each observed access
//! ([`Engine::estimate_access_ms`]) must track what the cost ledger
//! actually charges, for Always Recompute, Cache & Invalidate, and
//! Update Cache (AVM) alike. The tolerance is deliberately loose — the
//! estimator prices expected page counts, the ledger prices real ones —
//! but a model that drifts beyond a small constant factor is a bug, not
//! noise.

use procdb::core::{Engine, EngineOptions, StrategyKind};
use procdb::storage::CostConstants;
use procdb::workload::{build_database, database::r1, generate_procedures, sim_pager, SimConfig};

fn config() -> SimConfig {
    let mut c = SimConfig::default().scaled_down(100); // N = 1000
    c.n1 = 4;
    c.n2 = 4;
    // Wide enough windows (50 keys) and a loose `f2sel` cut that every
    // view is non-empty — an empty cache legitimately observes zero
    // charged work, which would make the ratio meaningless.
    c.f = 0.05;
    c.f2 = 0.5;
    c.seed = 2088;
    c
}

fn engine_for(kind: StrategyKind) -> Engine {
    let c = config();
    let pager = sim_pager(&c);
    let catalog = build_database(pager.clone(), &c).unwrap();
    let pop = generate_procedures(&c);
    let mut e = Engine::new(
        pager,
        catalog,
        pop.procs,
        kind,
        EngineOptions {
            r1: "R1".to_string(),
            r1_key_field: r1::SKEY,
            rvm_base_probe_field: r1::A,
            rvm_update_frequencies: None,
            // The estimator prices cold reads, so observe cold reads.
            clear_buffer_between_ops: true,
            shard: None,
        },
    )
    .unwrap();
    e.warm_up().unwrap();
    e
}

/// One predicted/observed pair: estimate first, then access and price
/// the ledger delta with the same constants.
fn measure(e: &mut Engine, i: usize, c: &CostConstants) -> (f64, f64) {
    let predicted = e.estimate_access_ms(i, c);
    let before = e.pager().ledger().snapshot();
    e.access(i).unwrap();
    let observed = e.pager().ledger().snapshot().since(&before).priced(c);
    (predicted, observed)
}

fn assert_within_band(kind: StrategyKind, label: &str, predicted: f64, observed: f64) {
    assert!(
        observed > 0.0,
        "{kind} {label}: access charged nothing (observed {observed})"
    );
    assert!(
        predicted > 0.0,
        "{kind} {label}: prediction is zero (observed {observed:.1} ms)"
    );
    let ratio = predicted / observed;
    // Asymmetric band: the estimator never undershoots much (it prices
    // real page counts for selections and cached reads) but deliberately
    // upper-bounds join probes at one page read each, while the buffer
    // pool absorbs repeat probes within an operation — so recompute
    // predictions for multi-join procedures can run several times high.
    assert!(
        (0.5..=8.0).contains(&ratio),
        "{kind} {label}: predicted {predicted:.1} ms vs observed {observed:.1} ms \
         (ratio {ratio:.2} outside [0.5, 8])"
    );
}

#[test]
fn predictions_track_observed_cost_across_strategies() {
    let c = CostConstants::default();
    for kind in [
        StrategyKind::AlwaysRecompute,
        StrategyKind::CacheInvalidate,
        StrategyKind::UpdateCacheAvm,
    ] {
        let mut e = engine_for(kind);
        let n_procs = e.procedures().len();
        // Steady state: every procedure from its warm (valid) state.
        for i in 0..n_procs {
            let (predicted, observed) = measure(&mut e, i, &c);
            assert_within_band(kind, "warm access", predicted, observed);
        }
    }
}

#[test]
fn predictions_track_observed_cost_after_invalidation() {
    let c = CostConstants::default();
    for kind in [
        StrategyKind::AlwaysRecompute,
        StrategyKind::CacheInvalidate,
        StrategyKind::UpdateCacheAvm,
    ] {
        let mut e = engine_for(kind);
        let n_procs = e.procedures().len();
        for round in 0..4 {
            // Re-key a handful of tuples spread across the key space so
            // some procedures conflict: CI must predict the recompute +
            // write-back path, AVM stays at a cached read.
            let base = (round * 211) as i64;
            e.apply_update(&[(base % 1000, 7 + base % 13), ((base + 500) % 1000, 3)])
                .unwrap();
            for i in 0..n_procs {
                let (predicted, observed) = measure(&mut e, i, &c);
                assert_within_band(kind, "post-update access", predicted, observed);
            }
        }
    }
}

#[test]
fn ci_prediction_rises_on_an_invalidated_cache() {
    let c = CostConstants::default();
    let mut e = engine_for(StrategyKind::CacheInvalidate);
    e.access(0).unwrap();
    let valid = e.estimate_access_ms(0, &c);
    // Every key moves somewhere in [0, 1000): saturate the update until
    // procedure 0 is actually invalidated (its window is seed-dependent).
    let mut invalidated = false;
    for k in (0..1000).step_by(50) {
        e.apply_update(&[(k, k + 1)]).unwrap();
        if e.valid_fraction().unwrap() < 1.0 {
            invalidated = true;
            break;
        }
    }
    assert!(invalidated, "no update conflicted with any cache");
    let invalid_max = (0..e.procedures().len())
        .map(|i| e.estimate_access_ms(i, &c))
        .fold(0.0f64, f64::max);
    assert!(
        invalid_max > valid,
        "invalidated prediction {invalid_max:.1} ms should exceed valid-cache {valid:.1} ms"
    );
}
