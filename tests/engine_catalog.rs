//! T-access: the paper's §3 access-method table must be realized by the
//! generated database — `R1` on a clustered B-tree over the selection
//! attribute, `R2`/`R3` hash-organized on their join attributes — and the
//! engine must exploit each (descent-priced selections, bucket-priced
//! probes).

use procdb::query::Organization;
use procdb::workload::{build_database, sim_pager, SimConfig};

fn config() -> SimConfig {
    let mut c = SimConfig::default().scaled_down(50); // N = 2000
    c.seed = 99;
    c
}

#[test]
fn access_methods_match_paper_table() {
    let c = config();
    let cat = build_database(sim_pager(&c), &c).unwrap();
    assert!(matches!(
        cat.get("R1").unwrap().organization(),
        Organization::BTree { key_field: 0 }
    ));
    assert!(matches!(
        cat.get("R2").unwrap().organization(),
        Organization::Hash { key_field: 0 }
    ));
    assert!(matches!(
        cat.get("R3").unwrap().organization(),
        Organization::Hash { key_field: 0 }
    ));
}

#[test]
fn r1_selection_costs_descent_plus_leaves() {
    let c = config();
    let pager = sim_pager(&c);
    let cat = build_database(pager.clone(), &c).unwrap();
    let r1 = cat.get("R1").unwrap();
    let h1 = r1.btree_height().unwrap() as u64;
    assert!(h1 >= 2, "tree should have internal levels at N = {}", c.n);

    pager.clear_buffer().unwrap();
    let before = pager.ledger().snapshot();
    let mut rows = 0;
    r1.range_scan(100, 119, |_| rows += 1).unwrap();
    let reads = pager.ledger().snapshot().since(&before).page_reads;
    assert_eq!(rows, 20);
    // Descent (≤ h1) + a handful of leaf pages: 20 tuples at ~30/page is
    // 1-2 leaves. Generous upper bound: h1 + 4.
    assert!(reads <= h1 + 4, "selection read {reads} pages (h1 = {h1})");
}

#[test]
fn r2_probe_costs_about_one_page() {
    let c = config();
    let pager = sim_pager(&c);
    let cat = build_database(pager.clone(), &c).unwrap();
    let r2 = cat.get("R2").unwrap();
    pager.clear_buffer().unwrap();
    let before = pager.ledger().snapshot();
    let probes = 20;
    for key in 0..probes {
        let mut n = 0;
        r2.probe(key, |_| n += 1).unwrap();
        assert_eq!(n, 1, "b = {key} should match exactly one tuple");
    }
    let reads = pager.ledger().snapshot().since(&before).page_reads;
    assert!(
        reads <= 2 * probes as u64,
        "{probes} probes cost {reads} page reads"
    );
}

#[test]
fn base_tables_sized_like_model() {
    let c = config();
    let cat = build_database(sim_pager(&c), &c).unwrap();
    assert_eq!(cat.get("R1").unwrap().len() as usize, c.n);
    assert_eq!(cat.get("R2").unwrap().len() as usize, c.n_r2());
    assert_eq!(cat.get("R3").unwrap().len() as usize, c.n_r3());
    // f·N tuples in a P1 window.
    let r1 = cat.get("R1").unwrap();
    let mut in_window = 0;
    r1.range_scan(0, c.p1_window() - 1, |_| in_window += 1)
        .unwrap();
    assert_eq!(in_window, c.p1_window());
}
