//! Scatter-gather correctness, fuzzed: for arbitrary seeded schedules of
//! procedure accesses, re-keying updates, and per-shard crash/recover
//! cycles, a [`procdb::shard::ShardedEngine`] must serve **byte-identical**
//! answers to a single-engine serial oracle replaying the same schedule —
//! for all four strategies and both procedure models (`P1` selection-only
//! and `P2` join procedures).
//!
//! The oracle comparison is on [`procdb::core::Engine::normalize`] output
//! (schema-encoded, sorted bytes), so any divergence in routing, merge
//! order, cross-shard moves, or per-shard recovery shows up as a byte
//! mismatch rather than a flaky row-order difference.

use std::sync::Arc;

use proptest::prelude::*;

use procdb::avm::{JoinStep, ViewDef};
use procdb::core::{Engine, EngineOptions, ProcedureDef, StrategyKind};
use procdb::query::{
    Catalog, CompOp, FieldType, Organization, Predicate, Schema, Table, Term, Value,
};
use procdb::shard::{shard_of, ShardedEngine};
use procdb::storage::{AccountingMode, CostConstants, Pager, PagerConfig};

const R1_ROWS: i64 = 120;
const R2_ROWS: i64 = 20;
const KEY_SPACE: i64 = 240;

/// Splitmix-style step; deterministic schedule choices per seed.
fn next(rng: &mut u64) -> u64 {
    *rng = rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *rng;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `R1(skey, a)` holding exactly `keys` (the full relation or one
/// shard's slice) and the replicated inner `R2(b, c, f2sel)`. Crash
/// simulation needs physical accounting, mirroring the chaos harness.
fn build_engine(kind: StrategyKind, keys: &[i64], shard: Option<u32>) -> Engine {
    let pager = Pager::new(PagerConfig {
        page_size: 512,
        buffer_capacity: 4096,
        mode: AccountingMode::Physical,
    });
    pager.set_charging(false);
    let r1s = Schema::new(vec![("skey", FieldType::Int), ("a", FieldType::Int)]);
    let r2s = Schema::new(vec![
        ("b", FieldType::Int),
        ("c", FieldType::Int),
        ("f2sel", FieldType::Int),
    ]);
    let mut r1 = Table::create(
        pager.clone(),
        "R1",
        r1s,
        Organization::BTree { key_field: 0 },
        0,
    )
    .unwrap();
    let mut r2 = Table::create(
        pager.clone(),
        "R2",
        r2s,
        Organization::Hash { key_field: 0 },
        R2_ROWS as usize,
    )
    .unwrap();
    for &k in keys {
        r1.insert(&vec![Value::Int(k), Value::Int(k % R2_ROWS)])
            .unwrap();
    }
    for j in 0..R2_ROWS {
        r2.insert(&vec![Value::Int(j), Value::Int(j % 10), Value::Int(j % 3)])
            .unwrap();
    }
    let mut cat = Catalog::new();
    cat.add(r1);
    cat.add(r2);
    pager.ledger().reset();
    pager.set_charging(true);
    // Both procedure models over the same base: P1 is a pure selection,
    // P2 pipelines the selection into a replicated-inner hash join.
    let procs = vec![
        ProcedureDef::new(
            0,
            "p1".to_string(),
            ViewDef {
                base: "R1".into(),
                selection: Predicate::int_range(0, 10, 79),
                joins: vec![],
            },
        ),
        ProcedureDef::new(
            1,
            "p2".to_string(),
            ViewDef {
                base: "R1".into(),
                selection: Predicate::int_range(0, 0, 149),
                joins: vec![JoinStep {
                    inner: "R2".into(),
                    outer_key_field: 1,
                    residual: Predicate {
                        terms: vec![Term::new(4, CompOp::Eq, 0i64)],
                    },
                }],
            },
        ),
    ];
    Engine::new(
        Arc::clone(&pager),
        cat,
        procs,
        kind,
        EngineOptions {
            shard,
            ..EngineOptions::default()
        },
    )
    .unwrap()
}

fn run_schedule(kind: StrategyKind, shards: usize, schedule_seed: u64) {
    let c = CostConstants::default();
    let keys: Vec<i64> = (0..R1_ROWS).collect();
    let mut oracle = build_engine(kind, &keys, None);
    let sharded = ShardedEngine::new(shards, |sid| {
        let slice: Vec<i64> = keys
            .iter()
            .copied()
            .filter(|&k| shard_of(k, shards) == sid)
            .collect();
        Ok::<Engine, String>(build_engine(kind, &slice, Some(sid as u32)))
    })
    .unwrap();
    oracle.warm_up().unwrap();
    sharded.warm_up().unwrap();
    let ctx = format!("{kind} shards={shards} seed={schedule_seed}");
    let mut rng = schedule_seed;
    for op in 0..30 {
        match next(&mut rng) % 4 {
            // Half the schedule is accesses: both models, every time.
            0 | 1 => {
                for i in 0..2 {
                    let expect = oracle.access(i).unwrap();
                    let (got, _ms) = sharded.access(i, &c).unwrap();
                    assert_eq!(
                        oracle.normalize(i, &got),
                        oracle.normalize(i, &expect),
                        "{ctx} op {op}: sharded access diverged on proc {i}"
                    );
                }
            }
            2 => {
                let victim = (next(&mut rng) % KEY_SPACE as u64) as i64;
                let new_key = (next(&mut rng) % KEY_SPACE as u64) as i64;
                let n_oracle = oracle.apply_update(&[(victim, new_key)]).unwrap();
                let (n_sharded, _ms) = sharded.apply_update(&[(victim, new_key)], &c).unwrap();
                assert_eq!(
                    n_oracle, n_sharded,
                    "{ctx} op {op}: update {victim}->{new_key} re-keyed a \
                     different tuple count"
                );
            }
            _ => {
                // Crash one shard (or everything) and recover it; the
                // oracle crashes whole — answers must survive either way.
                let sel = if next(&mut rng).is_multiple_of(2) {
                    Some((next(&mut rng) % shards as u64) as usize)
                } else {
                    None
                };
                sharded.crash(sel);
                let recovered = sharded.recover(sel);
                assert_eq!(
                    recovered.len(),
                    sel.map_or(shards, |_| 1),
                    "{ctx} op {op}: recovery must cover exactly the crashed shards"
                );
                oracle.crash();
                oracle.recover();
            }
        }
    }
    // Final sweep: every shard recovered, both models still byte-identical,
    // and the merged base relation matches the oracle's row count.
    for i in 0..2 {
        let expect = oracle.expected_rows(i).unwrap();
        let (got, _ms) = sharded.access(i, &c).unwrap();
        assert_eq!(
            oracle.normalize(i, &got),
            oracle.normalize(i, &expect),
            "{ctx}: final state diverged on proc {i}"
        );
    }
    assert_eq!(
        sharded.scan_r1().unwrap().len(),
        R1_ROWS as usize,
        "{ctx}: re-keying must conserve tuples across shards"
    );
}

proptest! {
    // Each case replays a 30-op schedule on 4 × (1 + S) engines; keep
    // the case count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn sharded_schedules_match_the_serial_oracle(
        schedule_seed in 0u64..1_000_000,
        shards in 2usize..=4,
    ) {
        for kind in StrategyKind::ALL {
            run_schedule(kind, shards, schedule_seed);
        }
    }
}

/// The degenerate one-shard deployment is exactly the single engine.
#[test]
fn one_shard_is_the_single_engine() {
    run_schedule(StrategyKind::CacheInvalidate, 1, 42);
}
