//! Replication correctness, fuzzed: for arbitrary seeded schedules of
//! procedure accesses, re-keying updates, injected **primary crashes**,
//! operator promotions, and replica resyncs, a replicated
//! [`procdb::shard::ShardedEngine`] must serve **byte-identical**
//! answers to a single-engine serial oracle replaying the same schedule
//! — for all four strategies, 1–4 shards, and 1–3 replicas per shard.
//!
//! Three properties beyond plain shard equivalence:
//!
//! * **Failover is invisible** — with a live follower, crashing a
//!   primary never surfaces an error: the very next access answers
//!   correctly from the promoted follower, no recovery step in between.
//! * **Resync restores equivalence** — a rejoined replica (delta-log
//!   replay or conservative full rebuild after truncation) answers
//!   exactly like a freshly rebuilt engine over the same base slice.
//! * **Cross-shard moves survive kill-points** (satellite): a crash
//!   mid delete-take/insert move leaves the re-keyed row on exactly
//!   one shard after recovery — never zero, never two.

use std::sync::Arc;

use proptest::prelude::*;

use procdb::avm::{JoinStep, ViewDef};
use procdb::core::{Engine, EngineOptions, ProcedureDef, StrategyKind};
use procdb::query::{
    Catalog, CompOp, FieldType, Organization, Predicate, Schema, Table, Term, Value,
};
use procdb::shard::{shard_of, ReplicaRole, ShardedEngine};
use procdb::storage::{AccountingMode, CostConstants, FaultPlan, Pager, PagerConfig};

const R1_ROWS: i64 = 120;
const R2_ROWS: i64 = 20;
const KEY_SPACE: i64 = 240;

/// Splitmix-style step; deterministic schedule choices per seed.
fn next(rng: &mut u64) -> u64 {
    *rng = rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *rng;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `R1(skey, a)` holding exactly `keys` plus the replicated inner
/// `R2(b, c, f2sel)` — the same fixture as the shard-equivalence fuzz,
/// so every replica of a group is built identically.
fn build_engine(kind: StrategyKind, keys: &[i64], shard: Option<u32>) -> Engine {
    let pager = Pager::new(PagerConfig {
        page_size: 512,
        buffer_capacity: 4096,
        mode: AccountingMode::Physical,
    });
    pager.set_charging(false);
    let r1s = Schema::new(vec![("skey", FieldType::Int), ("a", FieldType::Int)]);
    let r2s = Schema::new(vec![
        ("b", FieldType::Int),
        ("c", FieldType::Int),
        ("f2sel", FieldType::Int),
    ]);
    let mut r1 = Table::create(
        pager.clone(),
        "R1",
        r1s,
        Organization::BTree { key_field: 0 },
        0,
    )
    .unwrap();
    let mut r2 = Table::create(
        pager.clone(),
        "R2",
        r2s,
        Organization::Hash { key_field: 0 },
        R2_ROWS as usize,
    )
    .unwrap();
    for &k in keys {
        r1.insert(&vec![Value::Int(k), Value::Int(k % R2_ROWS)])
            .unwrap();
    }
    for j in 0..R2_ROWS {
        r2.insert(&vec![Value::Int(j), Value::Int(j % 10), Value::Int(j % 3)])
            .unwrap();
    }
    let mut cat = Catalog::new();
    cat.add(r1);
    cat.add(r2);
    pager.ledger().reset();
    pager.set_charging(true);
    let procs = vec![
        ProcedureDef::new(
            0,
            "p1".to_string(),
            ViewDef {
                base: "R1".into(),
                selection: Predicate::int_range(0, 10, 79),
                joins: vec![],
            },
        ),
        ProcedureDef::new(
            1,
            "p2".to_string(),
            ViewDef {
                base: "R1".into(),
                selection: Predicate::int_range(0, 0, 149),
                joins: vec![JoinStep {
                    inner: "R2".into(),
                    outer_key_field: 1,
                    residual: Predicate {
                        terms: vec![Term::new(4, CompOp::Eq, 0i64)],
                    },
                }],
            },
        ),
    ];
    Engine::new(
        Arc::clone(&pager),
        cat,
        procs,
        kind,
        EngineOptions {
            shard,
            ..EngineOptions::default()
        },
    )
    .unwrap()
}

fn build_replicated(kind: StrategyKind, shards: usize, replicas: usize) -> ShardedEngine {
    let keys: Vec<i64> = (0..R1_ROWS).collect();
    ShardedEngine::new_replicated(shards, replicas, |sid, _rid| {
        let slice: Vec<i64> = keys
            .iter()
            .copied()
            .filter(|&k| shard_of(k, shards) == sid)
            .collect();
        Ok::<Engine, String>(build_engine(kind, &slice, Some(sid as u32)))
    })
    .unwrap()
}

fn assert_matches_oracle(
    oracle: &mut Engine,
    sharded: &ShardedEngine,
    c: &CostConstants,
    ctx: &str,
) {
    for i in 0..2 {
        let expect = oracle.access(i).unwrap();
        let (got, _ms) = sharded.access(i, c).unwrap();
        assert_eq!(
            oracle.normalize(i, &got),
            oracle.normalize(i, &expect),
            "{ctx}: replicated access diverged on proc {i}"
        );
    }
}

/// Every live replica of every group must answer exactly like a freshly
/// rebuilt engine over the same base slice: a replica's `access` output
/// equals its own uncharged fresh recompute (`expected_rows`), which in
/// turn equals the primary's — so resync really restored the data, not
/// just the liveness bit.
fn assert_groups_consistent(sharded: &ShardedEngine, ctx: &str) {
    for st in sharded.shard_stats() {
        let s = st.shard;
        let primary = st.primary_replica;
        for rs in &st.replica_status {
            assert_ne!(
                rs.role,
                ReplicaRole::Down,
                "{ctx}: shard {s} replica {} still down after resync",
                rs.replica
            );
            for i in 0..2 {
                let (got, expect_here, norm_got, norm_here) =
                    sharded.with_replica_engine_mut(s, rs.replica, |e| {
                        let got = e.access(i).unwrap();
                        let expect = e.expected_rows(i).unwrap();
                        (
                            e.normalize(i, &got).len(),
                            e.normalize(i, &expect).len(),
                            e.normalize(i, &got),
                            e.normalize(i, &expect),
                        )
                    });
                assert_eq!(
                    norm_got, norm_here,
                    "{ctx}: shard {s} replica {} proc {i} access ({got} rows) diverged \
                     from its own fresh recompute ({expect_here} rows)",
                    rs.replica
                );
                let norm_primary = sharded
                    .with_replica_engine_mut(s, primary, |e| {
                        e.expected_rows(i).map(|r| e.normalize(i, &r))
                    })
                    .unwrap();
                assert_eq!(
                    norm_here, norm_primary,
                    "{ctx}: shard {s} replica {} proc {i} holds different base data \
                     than the primary after resync",
                    rs.replica
                );
            }
        }
    }
}

fn run_schedule(kind: StrategyKind, shards: usize, replicas: usize, schedule_seed: u64) {
    let c = CostConstants::default();
    let keys: Vec<i64> = (0..R1_ROWS).collect();
    let mut oracle = build_engine(kind, &keys, None);
    let sharded = build_replicated(kind, shards, replicas);
    // A third of the runs shrink the delta log so that resync-by-replay
    // outruns retention and the conservative full rebuild gets fuzzed
    // too, not just the happy tail-replay path.
    if schedule_seed.is_multiple_of(3) {
        sharded.set_delta_log_cap(3);
    }
    oracle.warm_up().unwrap();
    sharded.warm_up().unwrap();
    let ctx = format!("{kind} shards={shards} replicas={replicas} seed={schedule_seed}");
    let mut rng = schedule_seed;
    for op in 0..24 {
        let octx = format!("{ctx} op {op}");
        match next(&mut rng) % 5 {
            0 | 1 => assert_matches_oracle(&mut oracle, &sharded, &c, &octx),
            2 => {
                let victim = (next(&mut rng) % KEY_SPACE as u64) as i64;
                let new_key = (next(&mut rng) % KEY_SPACE as u64) as i64;
                let n_oracle = oracle.apply_update(&[(victim, new_key)]).unwrap();
                let (n_sharded, _ms) = sharded.apply_update(&[(victim, new_key)], &c).unwrap();
                assert_eq!(
                    n_oracle, n_sharded,
                    "{octx}: update {victim}->{new_key} re-keyed a different tuple count"
                );
            }
            3 => {
                // Primary crash. With a follower the group promotes and
                // keeps answering with zero intervening recovery; the
                // ex-primary then rejoins (recover or explicit resync).
                let s = (next(&mut rng) % shards as u64) as usize;
                sharded.crash(Some(s));
                if replicas > 1 {
                    assert_matches_oracle(&mut oracle, &sharded, &c, &octx);
                    if next(&mut rng).is_multiple_of(2) {
                        let recovered = sharded.recover(Some(s));
                        assert_eq!(recovered.len(), 1, "{octx}: recover must cover shard {s}");
                    } else {
                        sharded
                            .resync(Some(s))
                            .unwrap_or_else(|e| panic!("{octx}: resync failed: {e}"));
                    }
                } else {
                    // A lone primary is the unreplicated engine: crash
                    // stops service until recover, like the oracle.
                    let recovered = sharded.recover(Some(s));
                    assert_eq!(recovered.len(), 1);
                    oracle.crash();
                    oracle.recover();
                }
            }
            _ => {
                // Forced promotion drill (no crash). Errs without a live
                // follower — fine, that is the single-replica answer.
                let s = (next(&mut rng) % shards as u64) as usize;
                let promoted = sharded.promote(s);
                assert_eq!(
                    promoted.is_ok(),
                    replicas > 1,
                    "{octx}: promote must succeed exactly when a follower exists"
                );
                assert_matches_oracle(&mut oracle, &sharded, &c, &octx);
            }
        }
    }
    // Final sweep: everything recovered and resynced, answers still
    // byte-identical, tuples conserved, every replica equal to a fresh
    // rebuild of its slice.
    sharded.recover(None);
    sharded.resync(None).unwrap();
    for i in 0..2 {
        let expect = oracle.expected_rows(i).unwrap();
        let (got, _ms) = sharded.access(i, &c).unwrap();
        assert_eq!(
            oracle.normalize(i, &got),
            oracle.normalize(i, &expect),
            "{ctx}: final state diverged on proc {i}"
        );
    }
    assert_eq!(
        sharded.scan_r1().unwrap().len(),
        R1_ROWS as usize,
        "{ctx}: re-keying must conserve tuples across shards"
    );
    assert_groups_consistent(&sharded, &ctx);
}

proptest! {
    // Each case replays a 24-op schedule on 4 strategies x (1 + S*R)
    // engines; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn replicated_schedules_match_the_serial_oracle(
        schedule_seed in 0u64..1_000_000,
        shards in 1usize..=4,
        replicas in 1usize..=3,
    ) {
        for kind in StrategyKind::ALL {
            run_schedule(kind, shards, replicas, schedule_seed);
        }
    }
}

/// The degenerate 1x1 deployment is exactly the single engine.
#[test]
fn one_shard_one_replica_is_the_single_engine() {
    run_schedule(StrategyKind::CacheInvalidate, 1, 1, 42);
}

/// Crashing every primary at once with followers present is still
/// invisible: each group promotes and the cluster answers without any
/// recovery step. (The acceptance property behind `crash N` answering
/// every access without `err` when replicas >= 2.)
#[test]
fn whole_cluster_primary_crash_is_invisible_with_followers() {
    let c = CostConstants::default();
    let keys: Vec<i64> = (0..R1_ROWS).collect();
    for kind in StrategyKind::ALL {
        let mut oracle = build_engine(kind, &keys, None);
        let sharded = build_replicated(kind, 2, 2);
        oracle.warm_up().unwrap();
        sharded.warm_up().unwrap();
        sharded.apply_update(&[(5, 200)], &c).unwrap();
        oracle.apply_update(&[(5, 200)]).unwrap();
        sharded.crash(None);
        // Every group promoted away from the initial primary (replica 0)
        // and is serving with the ex-primary down. (`failovers()` reads a
        // process-global registry counter, so assert topology instead.)
        for st in sharded.shard_stats() {
            assert_eq!(
                st.primary_replica, 1,
                "{kind}: shard {} must have promoted its follower",
                st.shard
            );
            assert_eq!(st.live_replicas, 1, "{kind}: the ex-primary is down");
        }
        assert_matches_oracle(&mut oracle, &sharded, &c, &format!("{kind} post-crash"));
        // Updates keep flowing to the new primaries too.
        sharded.apply_update(&[(7, 201)], &c).unwrap();
        oracle.apply_update(&[(7, 201)]).unwrap();
        assert_matches_oracle(
            &mut oracle,
            &sharded,
            &c,
            &format!("{kind} post-crash update"),
        );
        // Ex-primaries rejoin and the groups converge again.
        sharded.recover(None);
        assert_groups_consistent(&sharded, &format!("{kind} after rejoin"));
    }
}

/// Delta-log truncation forces the conservative path: a replica left
/// behind past the retention window reports `full_rebuild` (not replay)
/// and still converges to the primary's exact content.
#[test]
fn truncated_log_forces_full_rebuild_resync() {
    let c = CostConstants::default();
    let sharded = build_replicated(StrategyKind::CacheInvalidate, 2, 2);
    sharded.warm_up().unwrap();
    sharded.set_delta_log_cap(2);
    // Take shard 0's replica 0 down via a primary crash (the follower
    // is promoted), then push enough mutations through every shard to
    // blow past the 2-op retention window.
    sharded.crash(Some(0));
    for k in 0..8 {
        sharded.apply_update(&[(k, k + 300)], &c).unwrap();
    }
    let reports = sharded.resync(Some(0)).unwrap();
    let ex_primary = reports
        .iter()
        .find(|r| r.replica == 0)
        .expect("the crashed ex-primary must be resynced");
    assert!(
        ex_primary.full_rebuild,
        "a replica behind a truncated log must take the snapshot path, got {ex_primary:?}"
    );
    assert_eq!(ex_primary.replayed, 0);
    assert_groups_consistent(&sharded, "post truncation resync");
    // A promptly-resynced follower, by contrast, replays.
    sharded.set_delta_log_cap(256);
    sharded.crash(Some(0));
    sharded.apply_update(&[(301, 5)], &c).unwrap();
    let reports = sharded.resync(Some(0)).unwrap();
    assert!(
        reports.iter().any(|r| !r.full_rebuild),
        "a replica within the retention window should catch up by replay: {reports:?}"
    );
    assert_groups_consistent(&sharded, "post replay resync");
}

/// Satellite: a kill-point firing **mid cross-shard move** (after the
/// source shard's delete-take, during its maintenance) must not lose or
/// duplicate the moving row — after recovery it lives on exactly the
/// destination shard, exactly once.
#[test]
fn kill_point_mid_cross_shard_move_leaves_row_on_exactly_one_shard() {
    let shards = 2;
    for kind in StrategyKind::ALL {
        let c = CostConstants::default();
        let sharded = build_replicated(kind, shards, 1);
        sharded.warm_up().unwrap();
        // Pick a victim and a new key on *different* shards.
        let victim = (0..R1_ROWS)
            .find(|&k| shard_of(k, shards) == 0)
            .expect("shard 0 owns some key");
        let new_key = (R1_ROWS..KEY_SPACE)
            .find(|&k| shard_of(k, shards) == 1)
            .expect("shard 1 owns some spare key");
        let src_pager = sharded.with_engine(0, |e| e.pager().clone());
        // The next charged transfer on the source shard dies: the
        // delete-take's base effect is durable, its maintenance crashes.
        // Whether the latch springs at all depends on the strategy —
        // AlwaysRecompute and CacheInvalidate maintain deletes without
        // touching the pager (nothing to maintain / validity bits only),
        // so for them the move simply succeeds. Either way the placement
        // invariant below must hold.
        let injector = src_pager.install_faults(FaultPlan::new(7).kill_at(1));
        let res = sharded.apply_update(&[(victim, new_key)], &c);
        let sprung = injector.status().kills > 0;
        assert_eq!(
            res.is_err(),
            sprung,
            "{kind}: a sprung kill-point must surface as a maintenance \
             error, an un-sprung one as success (got {res:?})"
        );
        src_pager.clear_faults();
        let recovered = sharded.recover(Some(0));
        assert_eq!(recovered.len(), 1);
        // Exactly one copy of the moved row, on the destination shard.
        let all = sharded.scan_r1().unwrap();
        assert_eq!(all.len(), R1_ROWS as usize, "{kind}: tuples not conserved");
        let moved = all
            .iter()
            .filter(|row| row[0] == Value::Int(new_key))
            .count();
        let stale = all
            .iter()
            .filter(|row| row[0] == Value::Int(victim))
            .count();
        assert_eq!(moved, 1, "{kind}: the re-keyed row must exist exactly once");
        assert_eq!(stale, 0, "{kind}: the old key must be gone");
        let on_dst = sharded.with_engine(1, |e| {
            let pg = e.pager().clone();
            let was = pg.is_charging();
            pg.set_charging(false);
            let rows = e.catalog().get("R1").unwrap().scan_all().unwrap();
            pg.set_charging(was);
            rows.iter().filter(|r| r[0] == Value::Int(new_key)).count()
        });
        assert_eq!(
            on_dst, 1,
            "{kind}: the moved row must live on the destination shard"
        );
        // And the recovered cluster still answers like a fresh rebuild.
        for i in 0..2 {
            let (got, _ms) = sharded.access(i, &c).unwrap();
            let expect = sharded.expected_rows(i).unwrap();
            let norm = sharded.with_engine(0, |e| (e.normalize(i, &got), e.normalize(i, &expect)));
            assert_eq!(norm.0, norm.1, "{kind}: post-recovery answers diverged");
        }
    }
}
