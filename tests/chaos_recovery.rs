//! Chaos harness: seeded fault schedules (I/O failures, torn writes, a
//! deterministic failure window) interleaved with a workload and at
//! least two whole-engine crash/recover cycles, over all four
//! strategies. The recovered engine's answers must equal the fault-free
//! serial oracle ([`Engine::expected_rows`], which recomputes uncharged
//! and is therefore immune to injected faults), and every crash and
//! recovery pass must be visible in the `procdb-obs` registry.
//!
//! Reproduces the paper's §3 reliability ranking as an executable
//! property: Always Recompute recovers with zero WAL replay, Cache &
//! Invalidate replays its validity WAL (conservatively invalidating the
//! unforced window), and Update Cache rebuilds derived state on first
//! access.

use std::sync::Arc;

use procdb::avm::{JoinStep, ViewDef};
use procdb::core::{Engine, EngineOptions, ProcedureDef, StrategyKind};
use procdb::query::{
    Catalog, CompOp, FieldType, Organization, Predicate, Schema, Table, Term, Value,
};
use procdb::storage::{AccountingMode, FaultPlan, Pager, PagerConfig};

const SEEDS: [u64; 3] = [11, 23, 47];
const OPS_PER_CYCLE: usize = 12;
const CRASH_CYCLES: u64 = 2;

/// Splitmix-style step; deterministic workload choices per seed.
fn next(rng: &mut u64) -> u64 {
    *rng = rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *rng;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// R1(skey, a, pad) 200 rows, R2(b, c, f2sel) 20 rows. Built uncharged,
/// mirroring the engine's own test fixtures.
fn catalog(pager: &Arc<Pager>) -> Catalog {
    pager.set_charging(false);
    let r1s = Schema::new(vec![
        ("skey", FieldType::Int),
        ("a", FieldType::Int),
        ("pad", FieldType::Bytes(4)),
    ]);
    let r2s = Schema::new(vec![
        ("b", FieldType::Int),
        ("c", FieldType::Int),
        ("f2sel", FieldType::Int),
    ]);
    let mut r1 = Table::create(
        pager.clone(),
        "R1",
        r1s,
        Organization::BTree { key_field: 0 },
        0,
    )
    .unwrap();
    let mut r2 = Table::create(
        pager.clone(),
        "R2",
        r2s,
        Organization::Hash { key_field: 0 },
        20,
    )
    .unwrap();
    for i in 0..200i64 {
        r1.insert(&vec![
            Value::Int(i),
            Value::Int(i % 20),
            Value::Bytes(vec![0; 4]),
        ])
        .unwrap();
    }
    for j in 0..20i64 {
        r2.insert(&vec![Value::Int(j), Value::Int(j % 10), Value::Int(j % 3)])
            .unwrap();
    }
    let mut cat = Catalog::new();
    cat.add(r1);
    cat.add(r2);
    pager.ledger().reset();
    pager.set_charging(true);
    cat
}

fn p1(id: u32, lo: i64, hi: i64) -> ProcedureDef {
    ProcedureDef::new(
        id,
        format!("p1-{id}"),
        ViewDef {
            base: "R1".into(),
            selection: Predicate::int_range(0, lo, hi),
            joins: vec![],
        },
    )
}

fn p2(id: u32, lo: i64, hi: i64) -> ProcedureDef {
    ProcedureDef::new(
        id,
        format!("p2-{id}"),
        ViewDef {
            base: "R1".into(),
            selection: Predicate::int_range(0, lo, hi),
            joins: vec![JoinStep {
                inner: "R2".into(),
                outer_key_field: 1,
                residual: Predicate {
                    terms: vec![Term::new(5, CompOp::Eq, 0i64)],
                },
            }],
        },
    )
}

/// Crash simulation needs physical accounting with buffer clears at
/// operation boundaries: each operation is durable before the next, so
/// `Engine::crash` models volatility rather than data loss.
fn engine_physical(kind: StrategyKind) -> (Arc<Pager>, Engine) {
    let pg = Pager::new(PagerConfig {
        page_size: 512,
        buffer_capacity: 4096,
        mode: AccountingMode::Physical,
    });
    let cat = catalog(&pg);
    let procs = vec![p1(0, 10, 29), p2(1, 0, 49)];
    let e = Engine::new(pg.clone(), cat, procs, kind, EngineOptions::default()).unwrap();
    (pg, e)
}

fn assert_oracle(e: &mut Engine, i: usize, ctx: &str) {
    let got = e
        .access(i)
        .unwrap_or_else(|err| panic!("{ctx}: fault-free access failed: {err}"));
    let expect = e.expected_rows(i).unwrap();
    assert_eq!(
        e.normalize(i, &got),
        e.normalize(i, &expect),
        "{ctx}: proc {i} diverged from the serial oracle"
    );
}

/// One chaos run: two crash cycles, each under a fresh seeded fault plan
/// (probabilistic I/O + torn faults plus a short deterministic failure
/// window so every run injects at least one fault), then a fault-free
/// oracle verification of the recovered engine.
fn run_chaos(kind: StrategyKind, seed: u64) {
    let (pg, mut e) = engine_physical(kind);
    e.warm_up().unwrap();
    let mut rng = seed;
    let mut faulted_ops = 0usize;
    for cycle in 0..CRASH_CYCLES {
        // A fresh plan per cycle: the previous cycle's recovery spent any
        // crash latch, and re-seeding keeps the schedule deterministic.
        let plan = FaultPlan::new(seed ^ (cycle.wrapping_mul(0x9e37_79b9) | 1))
            .io_reads(0.03)
            .io_writes(0.03)
            .torn_writes(0.03)
            .fail_window(1 + cycle * 9, 3 + cycle * 9);
        pg.install_faults(plan);
        for op in 0..OPS_PER_CYCLE {
            if next(&mut rng).is_multiple_of(2) {
                // Base mutations are uncharged and therefore always apply;
                // only the charged *maintenance* may fault, which marks the
                // derived state untrusted and surfaces a typed error.
                let victim = (next(&mut rng) % 200) as i64;
                let new_key = (next(&mut rng) % 400) as i64;
                if e.apply_update(&[(victim, new_key)]).is_err() {
                    faulted_ops += 1;
                }
            } else {
                let i = (next(&mut rng) % 2) as usize;
                match e.access(i) {
                    Ok(rows) => {
                        // Even mid-chaos, a *successful* access must never
                        // serve a wrong answer.
                        let expect = e.expected_rows(i).unwrap();
                        assert_eq!(
                            e.normalize(i, &rows),
                            e.normalize(i, &expect),
                            "{kind} seed {seed} cycle {cycle} op {op}: \
                             successful access served a wrong answer"
                        );
                    }
                    Err(_) => faulted_ops += 1,
                }
            }
        }
        e.crash();
        let rep = e.recover().into_report().expect("crashed, so it recovers");
        assert_eq!(rep.crash_epoch, cycle + 1, "{kind} seed {seed}");
        if kind == StrategyKind::AlwaysRecompute {
            assert_eq!(rep.wal_records_replayed, 0, "AR replays no WAL (§3)");
            assert_eq!(rep.wal_bytes_replayed, 0);
            assert_eq!(rep.conservative_invalidations, 0);
            assert_eq!(rep.rebuilds_pending, 0);
        }
        // Recovery is idempotent: a second pass is a typed no-op rather
        // than a repeat replay.
        assert_eq!(
            e.recover(),
            procdb::core::RecoveryOutcome::NotCrashed,
            "{kind}: recovering a running engine must be a typed no-op"
        );
        // Fault-free verification of the recovered engine.
        pg.clear_faults();
        for i in 0..2 {
            assert_oracle(&mut e, i, &format!("{kind} seed {seed} cycle {cycle}"));
        }
    }
    // The deterministic failure windows guarantee injected faults showed
    // up as command errors, not just as metric noise.
    assert!(
        faulted_ops > 0,
        "{kind} seed {seed}: no operation ever observed an injected fault"
    );
}

/// Registry deltas for one strategy's recovery counters across a closure.
fn recovery_counter_deltas(kind: StrategyKind, f: impl FnOnce()) -> (u64, u64) {
    let reg = procdb::obs::global();
    let labels: &[(&str, &str)] = &[("strategy", kind.metric_label())];
    let crashes = reg.counter("procdb_recovery_crashes_total", labels);
    let passes = reg.counter("procdb_recovery_passes_total", labels);
    let (c0, p0) = (crashes.get(), passes.get());
    f();
    (crashes.get() - c0, passes.get() - p0)
}

#[test]
fn chaos_always_recompute() {
    let (crashes, passes) = recovery_counter_deltas(StrategyKind::AlwaysRecompute, || {
        for seed in SEEDS {
            run_chaos(StrategyKind::AlwaysRecompute, seed);
        }
    });
    assert!(crashes >= SEEDS.len() as u64 * CRASH_CYCLES);
    assert!(passes >= SEEDS.len() as u64 * CRASH_CYCLES);
}

#[test]
fn chaos_cache_invalidate() {
    let (crashes, passes) = recovery_counter_deltas(StrategyKind::CacheInvalidate, || {
        for seed in SEEDS {
            run_chaos(StrategyKind::CacheInvalidate, seed);
        }
    });
    assert!(crashes >= SEEDS.len() as u64 * CRASH_CYCLES);
    assert!(passes >= SEEDS.len() as u64 * CRASH_CYCLES);
}

#[test]
fn chaos_update_cache_avm() {
    let (crashes, passes) = recovery_counter_deltas(StrategyKind::UpdateCacheAvm, || {
        for seed in SEEDS {
            run_chaos(StrategyKind::UpdateCacheAvm, seed);
        }
    });
    assert!(crashes >= SEEDS.len() as u64 * CRASH_CYCLES);
    assert!(passes >= SEEDS.len() as u64 * CRASH_CYCLES);
}

#[test]
fn chaos_update_cache_rvm() {
    let (crashes, passes) = recovery_counter_deltas(StrategyKind::UpdateCacheRvm, || {
        for seed in SEEDS {
            run_chaos(StrategyKind::UpdateCacheRvm, seed);
        }
    });
    assert!(crashes >= SEEDS.len() as u64 * CRASH_CYCLES);
    assert!(passes >= SEEDS.len() as u64 * CRASH_CYCLES);
}

#[test]
fn injected_faults_are_counted() {
    // `procdb_faults_injected_total` is kind-labeled and process-global;
    // a deterministic failure window guarantees growth.
    let reg = procdb::obs::global();
    let io = reg.counter("procdb_faults_injected_total", &[("kind", "io")]);
    let before = io.get();
    let (pg, mut e) = engine_physical(StrategyKind::AlwaysRecompute);
    e.warm_up().unwrap();
    pg.install_faults(FaultPlan::new(1).fail_window(1, 4));
    assert!(e.access(0).is_err(), "the failure window must surface");
    pg.clear_faults();
    assert!(io.get() > before, "injected I/O faults must be counted");
    e.access(0).unwrap();
}

#[test]
fn kill_point_crash_recover_cycle_matches_oracle() {
    // A numbered kill-point mid-workload: the engine reports Crashed on
    // every charged transfer until `crash` + `recover`, after which the
    // answers match the oracle — for every strategy.
    for kind in StrategyKind::ALL {
        let (pg, mut e) = engine_physical(kind);
        e.warm_up().unwrap();
        pg.install_faults(FaultPlan::new(7).kill_at(5));
        let mut killed = false;
        for op in 0..8 {
            let r = if op % 2 == 0 {
                e.access(op / 2 % 2).map(|_| ())
            } else {
                e.apply_update(&[(30 + op as i64, 300 + op as i64)])
                    .map(|_| ())
            };
            if r.is_err() {
                killed = true;
            }
        }
        assert!(killed, "{kind}: the kill-point never fired");
        e.crash();
        let rep = e.recover().into_report().expect("crashed, so it recovers");
        assert_eq!(rep.crash_epoch, 1);
        pg.clear_faults();
        for i in 0..2 {
            assert_oracle(&mut e, i, &format!("{kind} post-kill recovery"));
        }
    }
}
