//! Failure containment under **message chaos**, fuzzed: with a seeded
//! [`procdb::shard::ChaosPlan`] delaying, dropping, duplicating, and
//! reordering delta ships — and firing mid-commit fences — a replicated
//! [`procdb::shard::ShardedEngine`] must still serve byte-identical
//! answers to a single-engine serial oracle replaying the same schedule
//! of accesses, updates, crashes, promotions, and resyncs, for all four
//! strategies, 1–4 shards, and 2–3 replicas per group.
//!
//! Properties beyond plain replica equivalence:
//!
//! * **Zero acked-then-lost writes** — an update the cluster
//!   acknowledged re-keys exactly the tuples the oracle re-keyed, and
//!   the final sweep conserves every tuple; chaos may delay or dupe the
//!   ships, never the commit.
//! * **Every stale-primary write is fenced** — a write racing a
//!   promotion surfaces as the typed `FENCED` error (never a silent
//!   drop, never a panic), and the bounded retry lands on the new
//!   primary.
//! * **Exactly one epoch bump per promotion** — a manual `promote`
//!   racing a supervisor tick over the same dead primary serializes on
//!   the group-epoch compare-exchange (the satellite regression).
//! * **Resync mid-failover is safe** — `resync` rejoins a fenced
//!   ex-primary as a follower at the new epoch; it never resurrects it
//!   as primary and never panics, even racing fenced writes.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use procdb::avm::{JoinStep, ViewDef};
use procdb::core::{Engine, EngineOptions, ProcedureDef, StrategyKind};
use procdb::query::{
    Catalog, CompOp, FieldType, Organization, Predicate, Schema, Table, Term, Value,
};
use procdb::shard::{shard_of, ChaosPlan, ReplicaRole, ShardedEngine};
use procdb::storage::{AccountingMode, CostConstants, Pager, PagerConfig, StorageError};

const R1_ROWS: i64 = 120;
const R2_ROWS: i64 = 20;
const KEY_SPACE: i64 = 240;

/// Bound on fenced-write retries per update: each fence fires at most
/// once per live follower (firing downs the then-primary), so a bound
/// far above the replica count means "stuck" and fails loudly.
const MAX_FENCE_RETRIES: usize = 64;

/// Splitmix-style step; deterministic schedule choices per seed.
fn next(rng: &mut u64) -> u64 {
    *rng = rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *rng;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `R1(skey, a)` holding exactly `keys` plus the replicated inner
/// `R2(b, c, f2sel)` — the same fixture as the replica-failover fuzz,
/// so every replica of a group is built identically.
fn build_engine(kind: StrategyKind, keys: &[i64], shard: Option<u32>) -> Engine {
    let pager = Pager::new(PagerConfig {
        page_size: 512,
        buffer_capacity: 4096,
        mode: AccountingMode::Physical,
    });
    pager.set_charging(false);
    let r1s = Schema::new(vec![("skey", FieldType::Int), ("a", FieldType::Int)]);
    let r2s = Schema::new(vec![
        ("b", FieldType::Int),
        ("c", FieldType::Int),
        ("f2sel", FieldType::Int),
    ]);
    let mut r1 = Table::create(
        pager.clone(),
        "R1",
        r1s,
        Organization::BTree { key_field: 0 },
        0,
    )
    .unwrap();
    let mut r2 = Table::create(
        pager.clone(),
        "R2",
        r2s,
        Organization::Hash { key_field: 0 },
        R2_ROWS as usize,
    )
    .unwrap();
    for &k in keys {
        r1.insert(&vec![Value::Int(k), Value::Int(k % R2_ROWS)])
            .unwrap();
    }
    for j in 0..R2_ROWS {
        r2.insert(&vec![Value::Int(j), Value::Int(j % 10), Value::Int(j % 3)])
            .unwrap();
    }
    let mut cat = Catalog::new();
    cat.add(r1);
    cat.add(r2);
    pager.ledger().reset();
    pager.set_charging(true);
    let procs = vec![
        ProcedureDef::new(
            0,
            "p1".to_string(),
            ViewDef {
                base: "R1".into(),
                selection: Predicate::int_range(0, 10, 79),
                joins: vec![],
            },
        ),
        ProcedureDef::new(
            1,
            "p2".to_string(),
            ViewDef {
                base: "R1".into(),
                selection: Predicate::int_range(0, 0, 149),
                joins: vec![JoinStep {
                    inner: "R2".into(),
                    outer_key_field: 1,
                    residual: Predicate {
                        terms: vec![Term::new(4, CompOp::Eq, 0i64)],
                    },
                }],
            },
        ),
    ];
    Engine::new(
        Arc::clone(&pager),
        cat,
        procs,
        kind,
        EngineOptions {
            shard,
            ..EngineOptions::default()
        },
    )
    .unwrap()
}

fn build_replicated(kind: StrategyKind, shards: usize, replicas: usize) -> ShardedEngine {
    let keys: Vec<i64> = (0..R1_ROWS).collect();
    ShardedEngine::new_replicated(shards, replicas, |sid, _rid| {
        let slice: Vec<i64> = keys
            .iter()
            .copied()
            .filter(|&k| shard_of(k, shards) == sid)
            .collect();
        Ok::<Engine, String>(build_engine(kind, &slice, Some(sid as u32)))
    })
    .unwrap()
}

fn assert_matches_oracle(
    oracle: &mut Engine,
    sharded: &ShardedEngine,
    c: &CostConstants,
    ctx: &str,
) {
    for i in 0..2 {
        let expect = oracle.access(i).unwrap();
        let (got, _ms) = sharded.access(i, c).unwrap();
        assert_eq!(
            oracle.normalize(i, &got),
            oracle.normalize(i, &expect),
            "{ctx}: chaos-injected access diverged on proc {i}"
        );
    }
}

/// Every live replica of every group answers exactly like a fresh
/// rebuild of its slice and like its primary (the replica-failover
/// invariant, re-checked after a chaos run heals).
fn assert_groups_consistent(sharded: &ShardedEngine, ctx: &str) {
    for st in sharded.shard_stats() {
        let s = st.shard;
        let primary = st.primary_replica;
        for rs in &st.replica_status {
            assert_ne!(
                rs.role,
                ReplicaRole::Down,
                "{ctx}: shard {s} replica {} still down after resync",
                rs.replica
            );
            for i in 0..2 {
                let (norm_got, norm_here) = sharded.with_replica_engine_mut(s, rs.replica, |e| {
                    let got = e.access(i).unwrap();
                    let expect = e.expected_rows(i).unwrap();
                    (e.normalize(i, &got), e.normalize(i, &expect))
                });
                assert_eq!(
                    norm_got, norm_here,
                    "{ctx}: shard {s} replica {} proc {i} diverged from its own fresh recompute",
                    rs.replica
                );
                let norm_primary = sharded
                    .with_replica_engine_mut(s, primary, |e| {
                        e.expected_rows(i).map(|r| e.normalize(i, &r))
                    })
                    .unwrap();
                assert_eq!(
                    norm_here, norm_primary,
                    "{ctx}: shard {s} replica {} proc {i} holds different base data \
                     than the primary after the chaos run healed",
                    rs.replica
                );
            }
        }
    }
}

/// Apply one re-keying update through the cluster, retrying the typed
/// `FENCED` rejection (the promotion landed mid-commit; the op was
/// refused *before* touching state, so the retry is exact-once).
/// Returns `(rows_rekeyed, fences_survived)`.
fn apply_with_fence_retry(
    sharded: &ShardedEngine,
    pair: (i64, i64),
    c: &CostConstants,
    ctx: &str,
) -> (usize, usize) {
    let mut fenced = 0usize;
    loop {
        match sharded.apply_update(&[pair], c) {
            Ok((n, _ms)) => return (n, fenced),
            Err(StorageError::Fenced { .. }) => {
                fenced += 1;
                assert!(
                    fenced < MAX_FENCE_RETRIES,
                    "{ctx}: update {pair:?} fenced {fenced} times in a row"
                );
            }
            Err(e) => panic!("{ctx}: update {pair:?} failed non-retryably: {e}"),
        }
    }
}

/// One fuzzed chaos schedule: install a seeded all-fates plan, run the
/// replica-failover op mix against the serial oracle, then heal and
/// check full-group convergence plus the fencing ledger.
fn run_chaos_schedule(kind: StrategyKind, shards: usize, replicas: usize, schedule_seed: u64) {
    let c = CostConstants::default();
    let keys: Vec<i64> = (0..R1_ROWS).collect();
    let mut oracle = build_engine(kind, &keys, None);
    let sharded = build_replicated(kind, shards, replicas);
    // A third of the runs shrink the delta log so chaos-induced lag
    // (dropped ships) pushes resync onto the conservative full-rebuild
    // path, not just tail replay.
    if schedule_seed.is_multiple_of(3) {
        sharded.set_delta_log_cap(3);
    }
    oracle.warm_up().unwrap();
    sharded.warm_up().unwrap();
    let plan = ChaosPlan::new(schedule_seed ^ 0x000c_4a05)
        .delays(0.3)
        .delay_window_ms(0, 2)
        .drops(0.15)
        .duplicates(0.2)
        .reorders(0.2)
        .fences(0.1);
    sharded.install_chaos(plan);
    let ctx = format!("{kind} shards={shards} replicas={replicas} seed={schedule_seed}");
    let mut rng = schedule_seed;
    let mut fences_seen = 0usize;
    for op in 0..24 {
        let octx = format!("{ctx} op {op}");
        match next(&mut rng) % 5 {
            0 | 1 => assert_matches_oracle(&mut oracle, &sharded, &c, &octx),
            2 => {
                let victim = (next(&mut rng) % KEY_SPACE as u64) as i64;
                let new_key = (next(&mut rng) % KEY_SPACE as u64) as i64;
                let n_oracle = oracle.apply_update(&[(victim, new_key)]).unwrap();
                let (n_sharded, fenced) =
                    apply_with_fence_retry(&sharded, (victim, new_key), &c, &octx);
                fences_seen += fenced;
                assert_eq!(
                    n_oracle, n_sharded,
                    "{octx}: update {victim}->{new_key} re-keyed a different tuple count"
                );
            }
            3 => {
                // Primary crash under chaos. Fences may already have
                // downed followers, so revive the group first — the
                // crash then always finds a live follower to promote.
                let s = (next(&mut rng) % shards as u64) as usize;
                sharded
                    .resync(Some(s))
                    .unwrap_or_else(|e| panic!("{octx}: pre-crash resync failed: {e}"));
                sharded.crash(Some(s));
                assert_matches_oracle(&mut oracle, &sharded, &c, &octx);
                if next(&mut rng).is_multiple_of(2) {
                    let recovered = sharded.recover(Some(s));
                    assert_eq!(recovered.len(), 1, "{octx}: recover must cover shard {s}");
                } else {
                    sharded
                        .resync(Some(s))
                        .unwrap_or_else(|e| panic!("{octx}: resync failed: {e}"));
                }
            }
            _ => {
                // Forced promotion drill. After a revive there is always
                // a live follower, chaos or not.
                let s = (next(&mut rng) % shards as u64) as usize;
                sharded
                    .resync(Some(s))
                    .unwrap_or_else(|e| panic!("{octx}: pre-promote resync failed: {e}"));
                sharded
                    .promote(s)
                    .unwrap_or_else(|e| panic!("{octx}: promote failed after resync: {e}"));
                assert_matches_oracle(&mut oracle, &sharded, &c, &octx);
            }
        }
    }
    // Heal: chaos off, every replica recovered and resynced. Every
    // typed FENCED error the client saw must be accounted for by the
    // injector's ledger (the ledger may run ahead: a fence on the
    // destination leg of a cross-shard move is retried *inside*
    // `apply_update` and never surfaces to the client).
    let status = sharded.chaos_off().expect("chaos was installed");
    assert!(
        status.fenced as usize >= fences_seen,
        "{ctx}: client saw {} typed FENCED errors but the injector only fired {}",
        fences_seen,
        status.fenced
    );
    sharded.recover(None);
    sharded.resync(None).unwrap();
    for i in 0..2 {
        let expect = oracle.expected_rows(i).unwrap();
        let (got, _ms) = sharded.access(i, &c).unwrap();
        assert_eq!(
            oracle.normalize(i, &got),
            oracle.normalize(i, &expect),
            "{ctx}: final state diverged on proc {i}"
        );
    }
    // Zero acked-then-lost (and zero duplicated) committed writes:
    // every tuple the oracle holds survives exactly once.
    assert_eq!(
        sharded.scan_r1().unwrap().len(),
        R1_ROWS as usize,
        "{ctx}: chaos lost or duplicated committed writes"
    );
    assert_groups_consistent(&sharded, &ctx);
}

proptest! {
    // Each case replays a 24-op schedule on 4 strategies x (1 + S*R)
    // engines under an active chaos injector; keep the case count
    // modest (matches the replica-failover fuzz budget).
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn chaos_schedules_match_the_serial_oracle(
        schedule_seed in 0u64..1_000_000,
        shards in 1usize..=4,
        replicas in 2usize..=3,
    ) {
        for kind in StrategyKind::ALL {
            run_chaos_schedule(kind, shards, replicas, schedule_seed);
        }
    }
}

/// Satellite regression: a manual `promote` racing a supervisor tick
/// over the same dead primary bumps the group epoch **exactly once**.
///
/// The race window is opened deterministically: the primary's engine is
/// crashed while its write lock stays held, so the supervisor's
/// `try_read` liveness probe reads "busy, not dead" and skips the slot,
/// and the operator `promote` blocks on its crash check. Releasing the
/// lock lets both promoters reach the group-epoch compare-exchange in
/// the same instant — whoever wins, the epoch moves by one.
#[test]
fn concurrent_promote_and_supervisor_tick_bump_the_epoch_exactly_once() {
    let sharded = build_replicated(StrategyKind::CacheInvalidate, 1, 3);
    sharded.warm_up().unwrap();
    let pidx = sharded.primary_of(0);
    let epoch0 = sharded.epoch_of(0);
    sharded.start_supervisor(Duration::from_millis(1));
    let winner = std::thread::scope(|scope| {
        let (held_tx, held_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let sharded_ref = &sharded;
        let holder = scope.spawn(move || {
            sharded_ref.with_replica_engine_mut(0, pidx, |e| {
                e.crash();
                held_tx.send(()).unwrap();
                // Hold the write lock: the primary is dead but looks
                // busy, so no promoter can act yet.
                release_rx.recv().unwrap();
            });
        });
        held_rx.recv().unwrap();
        // The supervisor ticks every 1ms the whole time; a busy-looking
        // primary must never be failed over.
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(
            sharded.epoch_of(0),
            epoch0,
            "a held write lock means busy, not dead — no promotion yet"
        );
        let promoter = scope.spawn(move || sharded_ref.promote(0));
        // Let the operator promote reach its (blocked) crash check,
        // then spring the trap: supervisor tick and operator promote
        // now race on the same dead primary.
        std::thread::sleep(Duration::from_millis(10));
        release_tx.send(()).unwrap();
        let winner = promoter.join().unwrap().expect("a live follower exists");
        holder.join().unwrap();
        // Give the supervisor a few more ticks to (wrongly) double-act.
        std::thread::sleep(Duration::from_millis(10));
        winner
    });
    sharded.stop_supervisor();
    assert_eq!(
        sharded.epoch_of(0),
        epoch0 + 1,
        "concurrent promote + supervisor tick must yield exactly one epoch bump"
    );
    assert_ne!(
        winner, pidx,
        "the dead primary cannot win its own succession"
    );
    assert_eq!(
        sharded.primary_of(0),
        winner,
        "the loser of the CAS must report the actual winner"
    );
    // The group heals and converges as usual afterwards.
    sharded.recover(Some(0));
    sharded.resync(Some(0)).unwrap();
    assert_groups_consistent(&sharded, "post promote race");
}

/// Satellite: `resync [N]` issued mid-failover — after a fence demoted
/// the primary — rejoins the fenced ex-primary as a **follower** at the
/// new epoch. It never resurrects it as primary, never double-bumps the
/// epoch, and the fenced write's retry lands exactly once.
#[test]
fn resync_mid_failover_rejoins_the_fenced_ex_primary_as_follower() {
    let c = CostConstants::default();
    let sharded = build_replicated(StrategyKind::UpdateCacheRvm, 1, 3);
    sharded.warm_up().unwrap();
    let epoch0 = sharded.epoch_of(0);
    let old_primary = sharded.primary_of(0);
    // Every write attempt is fenced: the promotion verdict lands
    // mid-commit, the freshest live follower takes over for real, and
    // the op is refused before touching any state.
    sharded.install_chaos(ChaosPlan::new(11).fences(1.0));
    let err = sharded.apply_update(&[(1, 131)], &c).unwrap_err();
    assert!(
        matches!(err, StorageError::Fenced { .. }),
        "want the typed fence, got: {err}"
    );
    assert!(
        err.to_string().starts_with("FENCED"),
        "the fence must render with its wire-classifiable prefix: {err}"
    );
    assert_eq!(
        sharded.epoch_of(0),
        epoch0 + 1,
        "the fence is a real promotion"
    );
    let new_primary = sharded.primary_of(0);
    assert_ne!(new_primary, old_primary, "the stale primary was demoted");
    sharded.chaos_off();
    // Mid-failover resync: the fenced ex-primary is down and must come
    // back as a follower under the new primary's epoch.
    let reports = sharded.resync(Some(0)).unwrap();
    assert!(
        reports.iter().any(|r| r.replica == old_primary),
        "resync must cover the fenced ex-primary: {reports:?}"
    );
    assert_eq!(
        sharded.primary_of(0),
        new_primary,
        "resync must never resurrect a fenced replica as primary"
    );
    assert_eq!(
        sharded.epoch_of(0),
        epoch0 + 1,
        "resync applies against the new epoch, it does not bump it"
    );
    // The rejected write's retry lands exactly once on the new primary.
    let (n, _ms) = sharded.apply_update(&[(1, 131)], &c).unwrap();
    assert_eq!(
        n, 1,
        "the fenced write must not have left partial state behind"
    );
    sharded.resync(Some(0)).unwrap();
    assert_eq!(sharded.scan_r1().unwrap().len(), R1_ROWS as usize);
    assert_groups_consistent(&sharded, "post fence resync");
}

/// A fence needs a live follower to promote: once fences have demoted
/// the group down to a single live replica, writes go through — chaos
/// can degrade a group, never wedge it.
#[test]
fn a_fence_without_a_live_follower_cannot_fire() {
    let c = CostConstants::default();
    let sharded = build_replicated(StrategyKind::CacheInvalidate, 1, 2);
    sharded.warm_up().unwrap();
    sharded.install_chaos(ChaosPlan::new(23).fences(1.0));
    // First write: fenced (the lone follower is promoted, the
    // ex-primary is dropped from the group).
    let err = sharded.apply_update(&[(2, 132)], &c).unwrap_err();
    assert!(matches!(err, StorageError::Fenced { .. }), "{err}");
    // Retry: fences still armed, but no live follower remains — the
    // trap cannot spring and the write commits on the lone primary.
    let (n, _ms) = sharded.apply_update(&[(2, 132)], &c).unwrap();
    assert_eq!(n, 1);
    sharded.chaos_off();
    sharded.resync(Some(0)).unwrap();
    assert_eq!(sharded.scan_r1().unwrap().len(), R1_ROWS as usize);
    assert_groups_consistent(&sharded, "post degraded-group fence");
}

/// Stress the satellite's "never panics" clause: `resync` loops racing
/// fenced writes (fences + drops active) must only ever produce typed,
/// retryable outcomes, and the group converges once chaos lifts.
#[test]
fn resync_racing_fenced_writes_never_panics() {
    let c = CostConstants::default();
    let sharded = build_replicated(StrategyKind::CacheInvalidate, 1, 3);
    sharded.warm_up().unwrap();
    sharded.install_chaos(
        ChaosPlan::new(47)
            .delays(0.2)
            .delay_window_ms(0, 1)
            .drops(0.2)
            .fences(0.3),
    );
    std::thread::scope(|scope| {
        let sharded_ref = &sharded;
        let writer = scope.spawn(move || {
            for i in 0..50i64 {
                let pair = (i % KEY_SPACE, (i * 7) % KEY_SPACE);
                apply_with_fence_retry(sharded_ref, pair, &c, "chaos stress writer");
            }
        });
        let resyncer = scope.spawn(move || {
            for _ in 0..50 {
                // Mid-failover resyncs may surface retryable errors;
                // they must never panic or wedge the group.
                let _ = sharded_ref.resync(Some(0));
                std::thread::yield_now();
            }
        });
        writer.join().expect("writer must not panic");
        resyncer.join().expect("resyncer must not panic");
    });
    sharded.chaos_off();
    sharded.recover(None);
    sharded.resync(None).unwrap();
    assert_eq!(sharded.scan_r1().unwrap().len(), R1_ROWS as usize);
    assert_groups_consistent(&sharded, "post resync/write race");
}
