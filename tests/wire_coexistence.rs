//! Protocol coexistence: v1 text clients and v2 pipelined binary
//! clients drive **one** server (2 shards × 2 replicas per shard)
//! concurrently. Updates are constructed to commute (disjoint victims
//! and targets), so whatever interleaving the demultiplexer picks, the
//! final view must be byte-identical to a serial replay — and neither
//! protocol may see a single cross-protocol failure.
//!
//! Also covers the wire-v2 feature surface end to end (CALL with OUT
//! params, prepare/execute, out-of-order pipelining, typed errors) and
//! the line-protocol regression: a client hanging up mid-command (bytes
//! but no newline) must close cleanly without executing the fragment or
//! leaking an admission slot.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Barrier;
use std::time::Duration;

use procdb_core::StrategyKind;
use procdb_query::{FieldType, Organization, Schema, Value};
use procdb_server::{Server, ServerConfig, Session};
use procdb_wire::{errcode, Request, Response, WireClient};

const ROWS: i64 = 16;
const V1_UPDATERS: usize = 2;
const V2_UPDATERS: usize = 2;
const UPDATES_PER_CLIENT: i64 = ROWS / (V1_UPDATERS + V2_UPDATERS) as i64;
const PIPELINE_WINDOW: usize = 8;

fn build_session(strategy: StrategyKind) -> Session {
    let mut s = Session::new();
    s.create_table(
        "EMP",
        Schema::new(vec![("eid", FieldType::Int), ("grp", FieldType::Int)]),
        Organization::BTree { key_field: 0 },
    )
    .unwrap();
    for i in 0..ROWS {
        s.insert("EMP", vec![Value::Int(i), Value::Int(i % 4)])
            .unwrap();
    }
    s.define_view("define view V (EMP.all) where EMP.eid >= 0 and EMP.eid <= 5000")
        .unwrap();
    s.set_shards(2).unwrap();
    s.set_replicas(2).unwrap();
    s.set_strategy(strategy);
    s.prepare().unwrap();
    s
}

/// Client `u` (numbered across both protocols) owns victims
/// `[u*k, (u+1)*k)`, re-keyed to `victim + 1000`.
fn updates_for(u: usize) -> Vec<(i64, i64)> {
    (u as i64 * UPDATES_PER_CLIENT..(u as i64 + 1) * UPDATES_PER_CLIENT)
        .map(|k| (k, k + 1000))
        .collect()
}

// ---- v1 text client ----------------------------------------------------

struct V1Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl V1Client {
    fn connect(addr: std::net::SocketAddr) -> V1Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let writer = stream.try_clone().unwrap();
        let mut c = V1Client {
            writer,
            reader: BufReader::new(stream),
        };
        let (_greeting, term) = c.read_response();
        assert_eq!(term, "ok ready");
        c
    }

    fn read_response(&mut self) -> (Vec<String>, String) {
        let mut data = Vec::new();
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line).unwrap();
            assert!(n > 0, "server hung up mid-response");
            let line = line.trim_end().to_string();
            if line == "ok" || line.starts_with("ok ") || line.starts_with("err") {
                return (data, line);
            }
            data.push(line);
        }
    }

    fn cmd(&mut self, line: &str) -> (Vec<String>, String) {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .unwrap();
        self.read_response()
    }

    /// Retry BUSY/DEADLINE sheds — expected under admission pressure.
    fn cmd_retry(&mut self, line: &str) -> (Vec<String>, String) {
        for _ in 0..200 {
            let (data, term) = self.cmd(line);
            if term.starts_with("err BUSY") || term.starts_with("err DEADLINE") {
                std::thread::sleep(Duration::from_millis(2));
                continue;
            }
            return (data, term);
        }
        panic!("command {line:?} shed 200 times");
    }
}

fn v1_access_rows(client: &mut V1Client) -> Vec<String> {
    let (mut data, term) = client.cmd_retry("access V");
    assert_eq!(term, "ok", "access failed: {data:?}");
    let header = data.remove(0);
    assert!(header.contains(" rows in "), "garbled header: {header:?}");
    data.sort();
    data
}

// ---- v2 pipelined client ----------------------------------------------

/// Run `updates` through a windowed pipeline: keep up to
/// [`PIPELINE_WINDOW`] requests in flight, match responses by id in
/// whatever order they complete, and re-enqueue BUSY/DEADLINE sheds.
fn v2_pipelined_updates(addr: std::net::SocketAddr, updates: &[(i64, i64)]) {
    let mut client = WireClient::connect(addr, PIPELINE_WINDOW as u32).unwrap();
    let mut queue: VecDeque<(i64, i64, usize)> = updates.iter().map(|&(v, t)| (v, t, 0)).collect();
    let mut pending: HashMap<u64, (i64, i64, usize)> = HashMap::new();
    while !queue.is_empty() || !pending.is_empty() {
        while pending.len() < PIPELINE_WINDOW {
            let Some((v, t, tries)) = queue.pop_front() else {
                break;
            };
            let id = client
                .send(&Request::Command {
                    line: format!("update {v} -> {t}"),
                })
                .unwrap();
            pending.insert(id, (v, t, tries));
        }
        let (id, resp) = client.recv().unwrap();
        let (v, t, tries) = pending.remove(&id).expect("response for unknown id");
        match resp {
            Response::OkText { text } => {
                assert!(
                    text.starts_with("1 tuple(s) re-keyed"),
                    "update {v} -> {t} dropped: {text:?}"
                );
            }
            Response::Error { code, message }
                if code == errcode::BUSY || code == errcode::DEADLINE =>
            {
                assert!(tries < 200, "update {v} shed 200 times: {message}");
                std::thread::sleep(Duration::from_millis(2));
                queue.push_back((v, t, tries + 1));
            }
            other => panic!("update {v} -> {t}: unexpected response {other:?}"),
        }
    }
    client.close().unwrap();
}

/// A v2 reader interleaving framed commands and procedure calls.
fn v2_reader(addr: std::net::SocketAddr) {
    let mut client = WireClient::connect(addr, 4).unwrap();
    for _ in 0..4 {
        match retry_shed(&mut client, || Request::Command {
            line: "access V".to_string(),
        }) {
            Response::OkText { text } => {
                assert!(text.contains(" rows in "), "garbled access: {text:?}");
            }
            other => panic!("access V: unexpected response {other:?}"),
        }
        match retry_shed(&mut client, || Request::Call {
            name: "db.stats".to_string(),
            args: vec![],
        }) {
            Response::CallOk { text, .. } => {
                assert!(text.contains("operations"), "garbled stats: {text:?}");
            }
            other => panic!("db.stats: unexpected response {other:?}"),
        }
    }
    client.close().unwrap();
}

fn retry_shed(client: &mut WireClient, req: impl Fn() -> Request) -> Response {
    for _ in 0..200 {
        match client.roundtrip(&req()).unwrap() {
            Response::Error { code, .. } if code == errcode::BUSY || code == errcode::DEADLINE => {
                std::thread::sleep(Duration::from_millis(2))
            }
            other => return other,
        }
    }
    panic!("request shed 200 times");
}

// ---- the coexistence run ----------------------------------------------

fn run_strategy(strategy: StrategyKind) {
    let session = build_session(strategy);
    let server = Server::start(
        session,
        ServerConfig {
            port: 0,
            max_conns: 16,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let parties = V1_UPDATERS + V2_UPDATERS + 2;
    let barrier = Barrier::new(parties);
    std::thread::scope(|scope| {
        // v1 text updaters.
        for u in 0..V1_UPDATERS {
            let barrier = &barrier;
            scope.spawn(move || {
                let mut client = V1Client::connect(addr);
                barrier.wait();
                for (victim, target) in updates_for(u) {
                    let (data, term) = client.cmd_retry(&format!("update {victim} -> {target}"));
                    assert_eq!(term, "ok", "v1 update {victim} failed: {data:?}");
                    assert!(
                        data[0].starts_with("1 tuple(s) re-keyed"),
                        "v1 update {victim} dropped: {data:?}"
                    );
                }
                client.cmd("quit");
            });
        }
        // v2 pipelined updaters.
        for u in V1_UPDATERS..V1_UPDATERS + V2_UPDATERS {
            let barrier = &barrier;
            scope.spawn(move || {
                let updates = updates_for(u);
                barrier.wait();
                v2_pipelined_updates(addr, &updates);
            });
        }
        // One reader per protocol.
        {
            let barrier = &barrier;
            scope.spawn(move || {
                let mut client = V1Client::connect(addr);
                barrier.wait();
                for _ in 0..4 {
                    // Mid-flight snapshots can catch a cross-shard
                    // re-key between its delete and insert halves — in
                    // either order, since scatter-gather visits the two
                    // shards at different instants — so a row may
                    // transiently appear zero times (source read after
                    // the delete, target before the insert) or twice
                    // (source before the delete, target after the
                    // insert). Only well-formedness and a generous
                    // cardinality envelope hold here; the final-state
                    // oracle below is the exact check.
                    let rows = v1_access_rows(&mut client);
                    assert!(
                        rows.len() <= 2 * ROWS as usize,
                        "implausibly many rows: {rows:?}"
                    );
                    for r in &rows {
                        assert!(
                            r.starts_with("  (") && r.ends_with(')'),
                            "garbled row: {r:?}"
                        );
                    }
                }
                client.cmd("quit");
            });
        }
        {
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                v2_reader(addr);
            });
        }
    });

    // Final state over the v1 wire…
    let mut control = V1Client::connect(addr);
    let concurrent_rows = v1_access_rows(&mut control);
    // …and the protocol mix is visible in `stats`.
    let (stats, term) = control.cmd_retry("stats");
    assert_eq!(term, "ok");
    let mix = stats
        .iter()
        .find(|l| l.starts_with("wire:"))
        .unwrap_or_else(|| panic!("stats missing the wire mix: {stats:?}"));
    assert!(mix.contains("v2 connections="), "garbled mix: {mix:?}");
    control.cmd("quit");
    server.stop();

    // …must equal a serial replay of the same (commuting) updates.
    let mut serial = build_session(strategy);
    for u in 0..V1_UPDATERS + V2_UPDATERS {
        for (victim, target) in updates_for(u) {
            let (n, _) = serial.update(victim, target).unwrap();
            assert_eq!(n, 1);
        }
    }
    let (rows, _) = serial.access("V").unwrap();
    let mut serial_rows: Vec<String> = serial
        .render_rows(&rows, rows.len())
        .lines()
        .map(|l| l.to_string())
        .collect();
    serial_rows.sort();
    assert_eq!(
        concurrent_rows, serial_rows,
        "{strategy}: v1+v2 concurrent final state diverged from serial replay"
    );
}

#[test]
fn v1_and_v2_coexist_always_recompute() {
    run_strategy(StrategyKind::AlwaysRecompute);
}

#[test]
fn v1_and_v2_coexist_update_cache_rvm() {
    run_strategy(StrategyKind::UpdateCacheRvm);
}

// ---- v2 feature surface -----------------------------------------------

#[test]
fn v2_calls_procedures_with_out_params() {
    let server = Server::start(
        build_session(StrategyKind::AlwaysRecompute),
        ServerConfig {
            port: 0,
            max_conns: 4,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = WireClient::connect(server.addr(), 8).unwrap();
    assert!(client.banner().contains("wire v2"));

    // P1 with IN bounds and OUT counters, typed rows.
    match client
        .call("P1", vec![Value::Int(3), Value::Int(7)])
        .unwrap()
    {
        Response::CallOk { out, rows, .. } => {
            assert_eq!(rows.len(), 5);
            assert_eq!(out[0], ("matched".to_string(), Value::Int(5)));
            assert_eq!(out[1], ("scanned".to_string(), Value::Int(ROWS)));
            assert_eq!(rows[0][0], Value::Int(3));
        }
        other => panic!("P1: unexpected response {other:?}"),
    }

    // db.procedures lists the registry.
    match client.call("db.procedures", vec![]).unwrap() {
        Response::CallOk { text, .. } => {
            assert!(text.contains("P1(in lo:int"), "{text}");
            assert!(text.contains("db.shards()"), "{text}");
        }
        other => panic!("db.procedures: unexpected response {other:?}"),
    }

    // Typed argument validation travels as a typed error.
    match client.call("P1", vec![Value::Int(1)]).unwrap() {
        Response::Error { code, message } => {
            assert_eq!(code, errcode::EXEC);
            assert!(message.contains("expected"), "{message}");
        }
        other => panic!("bad arity: unexpected response {other:?}"),
    }
    client.close().unwrap();
}

#[test]
fn v2_prepare_execute_and_typed_errors() {
    let server = Server::start(
        build_session(StrategyKind::UpdateCacheAvm),
        ServerConfig {
            port: 0,
            max_conns: 4,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = WireClient::connect(server.addr(), 8).unwrap();

    let stmt = match client
        .roundtrip(&Request::Prepare {
            template: "update ? -> ?".to_string(),
        })
        .unwrap()
    {
        Response::Prepared { stmt } => stmt,
        other => panic!("prepare: unexpected response {other:?}"),
    };
    match client
        .roundtrip(&Request::Execute {
            stmt,
            args: vec![Value::Int(5), Value::Int(2005)],
        })
        .unwrap()
    {
        Response::OkText { text } => {
            assert!(text.starts_with("1 tuple(s) re-keyed"), "{text}")
        }
        other => panic!("execute: unexpected response {other:?}"),
    }
    // Unknown statement id and argument-count mismatch are typed.
    match client
        .roundtrip(&Request::Execute {
            stmt: 999,
            args: vec![],
        })
        .unwrap()
    {
        Response::Error { code, .. } => assert_eq!(code, errcode::UNKNOWN_STMT),
        other => panic!("unknown stmt: unexpected response {other:?}"),
    }
    match client
        .roundtrip(&Request::Execute {
            stmt,
            args: vec![Value::Int(1)],
        })
        .unwrap()
    {
        Response::Error { code, message } => {
            assert_eq!(code, errcode::PARSE);
            assert!(message.contains("placeholder"), "{message}");
        }
        other => panic!("arity mismatch: unexpected response {other:?}"),
    }
    // Ping answers Pong; a parse error on a framed command is typed.
    match client.roundtrip(&Request::Ping).unwrap() {
        Response::Pong => {}
        other => panic!("ping: unexpected response {other:?}"),
    }
    match client.command("no such verb").unwrap() {
        Response::Error { code, .. } => assert_eq!(code, errcode::EXEC),
        other => panic!("bad verb: unexpected response {other:?}"),
    }
    client.close().unwrap();
}

#[test]
fn v2_pipelined_responses_match_by_id() {
    let server = Server::start(
        build_session(StrategyKind::AlwaysRecompute),
        ServerConfig {
            port: 0,
            max_conns: 4,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = WireClient::connect(server.addr(), 16).unwrap();

    // Queue a burst of reads without waiting; every response must carry
    // a known id and each id must answer exactly once, whatever order
    // the worker pool finishes in.
    let mut expect: HashMap<u64, ()> = HashMap::new();
    for _ in 0..12 {
        let id = client
            .send(&Request::Command {
                line: "access V".to_string(),
            })
            .unwrap();
        expect.insert(id, ());
    }
    while !expect.is_empty() {
        let (id, resp) = client.recv().unwrap();
        assert!(expect.remove(&id).is_some(), "duplicate or unknown id {id}");
        match resp {
            Response::OkText { text } => {
                assert!(text.contains(" rows in "), "garbled access: {text:?}")
            }
            Response::Error { code, message }
                if code == errcode::BUSY || code == errcode::DEADLINE =>
            {
                // Shed under pressure is legal; it still answers the id.
                assert!(!message.is_empty());
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    client.close().unwrap();
}

// ---- v2 goodbye drain barrier under a deadline ------------------------

/// Satellite: `GOODBYE`'s drain barrier honors a client deadline. With
/// the worker pool wedged on chaos-delayed writes, a goodbye carrying a
/// tiny budget must answer the typed `DEADLINE` error (naming the
/// requests still in flight) instead of blocking until the drain
/// completes; with nothing in flight the same budgeted goodbye answers
/// `BYE` as usual.
#[test]
fn v2_goodbye_drain_barrier_honors_the_client_deadline() {
    let server = Server::start(
        build_session(StrategyKind::CacheInvalidate),
        ServerConfig {
            port: 0,
            max_conns: 8,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // Wedge every replicated write: the chaos delay fate sleeps each
    // delta ship 40-80ms, so in-flight updates cannot drain in 5ms.
    let mut control = V1Client::connect(addr);
    let (_, term) = control.cmd("chaos inject --delay 1 --delay-ms 40 80");
    assert!(term.starts_with("ok"), "chaos inject failed: {term}");

    let mut client = WireClient::connect(addr, 16).unwrap();
    let mut pending: HashMap<u64, ()> = HashMap::new();
    for i in 0..8 {
        let id = client
            .send(&Request::Command {
                line: format!("update {i} -> {}", i + 3000),
            })
            .unwrap();
        pending.insert(id, ());
    }
    // Goodbye with a 5ms budget: the barrier must expire, typed.
    let bye_id = client
        .send_with_deadline(&Request::Goodbye, 5, None)
        .unwrap();
    loop {
        let (id, resp) = client.recv().unwrap();
        if id != bye_id {
            // A fast update may still beat the barrier; fine.
            assert!(pending.remove(&id).is_some(), "unknown id {id}");
            continue;
        }
        match resp {
            Response::Error { code, message } => {
                assert_eq!(code, errcode::DEADLINE, "{message}");
                assert!(
                    message.contains("drain barrier"),
                    "the expiry must say what it was waiting on: {message}"
                );
                assert!(
                    message.contains("in flight"),
                    "the expiry must count the stragglers: {message}"
                );
            }
            other => panic!("goodbye under pressure: unexpected response {other:?}"),
        }
        break;
    }
    // The server closed the connection after the expired goodbye; the
    // wedged updates finish server-side into the void.
    drop(client);

    let (_, term) = control.cmd("chaos off");
    assert!(term.starts_with("ok"), "chaos off failed: {term}");
    control.cmd("quit");

    // Same budgeted goodbye with nothing in flight: a clean BYE.
    let mut client = WireClient::connect(addr, 4).unwrap();
    let bye_id = client
        .send_with_deadline(&Request::Goodbye, 50, None)
        .unwrap();
    let (id, resp) = client.recv().unwrap();
    assert_eq!(id, bye_id);
    assert!(
        matches!(resp, Response::Bye),
        "idle goodbye under a budget must still answer BYE: {resp:?}"
    );
    server.stop();
}

// ---- line-protocol EOF regression -------------------------------------

#[test]
fn v1_eof_mid_command_closes_clean_without_executing() {
    let server = Server::start(
        build_session(StrategyKind::AlwaysRecompute),
        ServerConfig {
            port: 0,
            max_conns: 8,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // Hang up mid-command, several times: bytes on the wire, no newline.
    for _ in 0..4 {
        let mut c = V1Client::connect(addr);
        c.writer.write_all(b"update 0 -> 7777").unwrap();
        drop(c); // close without the terminating newline
    }
    // Give the server a beat to reap the closed connections.
    std::thread::sleep(Duration::from_millis(100));

    // The fragment must not have executed…
    let mut control = V1Client::connect(addr);
    let rows = v1_access_rows(&mut control);
    assert_eq!(rows.len(), ROWS as usize);
    assert!(
        rows.iter().any(|r| r.starts_with("  (0,")),
        "truncated command executed! rows: {rows:?}"
    );
    // …and no admission slot leaked: the gate still admits a full burst
    // of sequential commands.
    for _ in 0..40 {
        let (_, term) = control.cmd_retry("access V");
        assert_eq!(term, "ok");
    }
    control.cmd("quit");
    server.stop();
}
