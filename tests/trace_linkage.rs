//! Request-trace linkage: every span recorded for a traced request on a
//! pipelined wire-v2 run over a 2-shard × 2-replica backend must link
//! to exactly one root via parent ids — no orphans, no cycles — even
//! when the spans were emitted by shard-pool worker threads and an
//! injected crash forced a mid-run failover.
//!
//! Also the `explain analyze` acceptance path: over v2 the rendered
//! tree must contain wire, session, per-shard-worker, and storage spans
//! sharing one trace id, with predicted-vs-observed cost on the engine
//! span, and `db.trace(ID)` must return the same tree after the fact.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use proptest::prelude::*;

use procdb::obs::TraceTree;
use procdb_core::StrategyKind;
use procdb_query::{FieldType, Organization, Schema, Value};
use procdb_server::{Server, ServerConfig, Session};
use procdb_wire::{Request, Response, WireClient};

const ROWS: i64 = 16;
const VIEWS: usize = 2;
const PIPELINE_WINDOW: u32 = 8;

/// The span registry is process-global and its finished-trace ring is
/// bounded, so the tests in this binary must not interleave their
/// traced batches (an interleaved test could evict trees before they
/// are inspected).
static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

/// Distinct client-chosen trace-id blocks per traced batch.
static NEXT_ID_BLOCK: AtomicU64 = AtomicU64::new(1);

fn fresh_id_block() -> u64 {
    0x4000_0000_0000 + NEXT_ID_BLOCK.fetch_add(1, Ordering::Relaxed) * 0x1000
}

fn build_session(strategy: StrategyKind) -> Session {
    let mut s = Session::new();
    s.create_table(
        "EMP",
        Schema::new(vec![("eid", FieldType::Int), ("grp", FieldType::Int)]),
        Organization::BTree { key_field: 0 },
    )
    .unwrap();
    for i in 0..ROWS {
        s.insert("EMP", vec![Value::Int(i), Value::Int(i % 4)])
            .unwrap();
    }
    for v in 0..VIEWS {
        let lo = v as i64 * (ROWS / VIEWS as i64);
        let hi = lo + ROWS / VIEWS as i64 - 1;
        s.define_view(&format!(
            "define view V{v} (EMP.all) where EMP.eid >= {lo} and EMP.eid <= {hi}"
        ))
        .unwrap();
    }
    s.set_shards(2).unwrap();
    s.set_replicas(2).unwrap();
    s.set_strategy(strategy);
    s.prepare().unwrap();
    s
}

/// Walk one tree: exactly one root, every parent id resolves within
/// the tree, every span reaches the root without revisiting a span,
/// and every span carries the tree's trace id.
fn assert_linked(tree: &TraceTree, trace_id: u64) {
    assert_eq!(
        tree.dropped, 0,
        "trace {trace_id} dropped spans; linkage check needs the full tree"
    );
    assert_eq!(tree.trace_id, trace_id);
    let by_id: HashMap<u64, &procdb::obs::SpanEvent> =
        tree.spans.iter().map(|s| (s.span_id, s)).collect();
    assert_eq!(by_id.len(), tree.spans.len(), "duplicate span ids");
    let roots: Vec<_> = tree.spans.iter().filter(|s| s.parent_id == 0).collect();
    assert_eq!(
        roots.len(),
        1,
        "trace {trace_id} must have exactly one root, got {}: {:?}",
        roots.len(),
        roots.iter().map(|s| s.name.clone()).collect::<Vec<_>>()
    );
    let root_id = roots[0].span_id;
    for span in &tree.spans {
        assert_eq!(span.trace_id, trace_id, "span {} crossed traces", span.name);
        let mut cur = span.span_id;
        let mut seen = std::collections::HashSet::new();
        while cur != root_id {
            assert!(seen.insert(cur), "cycle through span id {cur}");
            let s = by_id
                .get(&cur)
                .unwrap_or_else(|| panic!("orphan: span id {cur} ({})", span.name));
            cur = s.parent_id;
            assert!(
                by_id.contains_key(&cur),
                "span {} has unresolvable parent {cur}",
                s.name
            );
        }
    }
}

proptest! {
    // Each case drives a fresh server; a handful of cases keeps the
    // suite's wall-clock in line with the other wire proptests.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Pipelined traced commands (accesses and updates, interleaved
    /// with an injected crash/recover of shard 0) all yield fully
    /// linked single-root span trees under their client-chosen ids.
    #[test]
    fn traced_v2_runs_link_every_span_to_one_root(
        ops in proptest::collection::vec(0u8..8, 8..24),
        crash_at in 0usize..8,
    ) {
        let _guard = REGISTRY_LOCK.lock().unwrap();
        let server = Server::start(
            build_session(StrategyKind::CacheInvalidate),
            ServerConfig { port: 0, ..ServerConfig::default() },
        )
        .unwrap();
        let mut client = WireClient::connect(server.addr().to_string(), PIPELINE_WINDOW).unwrap();
        let base = fresh_id_block();

        let mut pending: HashMap<u64, u64> = HashMap::new(); // request id -> trace id
        // A re-key may legitimately fail (victim already moved); the
        // linkage property holds for errored requests too, so draining
        // only insists on a response per request.
        let drain = |client: &mut WireClient, pending: &mut HashMap<u64, u64>, floor: usize| {
            while pending.len() > floor {
                let (id, resp) = client.recv().unwrap();
                pending.remove(&id).unwrap();
                assert!(
                    matches!(resp, Response::OkText { .. } | Response::Error { .. }),
                    "unexpected response: {resp:?}"
                );
            }
        };
        let mut trace_ids = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            if i == crash_at {
                // Untraced control-plane hiccup: crash shard 0's
                // primary (a follower is promoted on the next access),
                // then rejoin it. Traced requests keep flowing.
                let id = client.send(&Request::Command { line: "crash 0".into() }).unwrap();
                pending.insert(id, 0);
                let id = client.send(&Request::Command { line: "recover 0".into() }).unwrap();
                pending.insert(id, 0);
            }
            let line = match op {
                0..=4 => format!("access V{}", *op as usize % VIEWS),
                _ => format!("update {} -> {}", *op as i64, *op as i64 + 100),
            };
            let tid = base + i as u64 + 1;
            trace_ids.push(tid);
            let id = client.send_traced(&Request::Command { line }, tid).unwrap();
            pending.insert(id, tid);
            if pending.len() >= PIPELINE_WINDOW as usize {
                drain(&mut client, &mut pending, PIPELINE_WINDOW as usize / 2);
            }
        }
        drain(&mut client, &mut pending, 0);
        client.close().unwrap();
        server.stop();

        let reg = procdb::obs::global();
        for tid in trace_ids {
            let tree = reg
                .find_trace(tid)
                .unwrap_or_else(|| panic!("trace {tid} was not retained"));
            assert_linked(&tree, tid);
            prop_assert!(
                tree.root().is_some_and(|r| r.name == "wire.request"),
                "root should be the wire span"
            );
        }
    }
}

#[test]
fn explain_analyze_over_v2_renders_a_multi_layer_tree() {
    let _guard = REGISTRY_LOCK.lock().unwrap();
    let server = Server::start(
        build_session(StrategyKind::AlwaysRecompute),
        ServerConfig {
            port: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = WireClient::connect(server.addr().to_string(), 4).unwrap();
    let id = client
        .send(&Request::Command {
            line: "explain analyze access V0".into(),
        })
        .unwrap();
    let (rid, resp) = client.recv().unwrap();
    assert_eq!(rid, id);
    let Response::OkText { text } = resp else {
        panic!("explain analyze failed: {resp:?}");
    };
    // One tree, all layers: wire root, session, shard workers (with
    // shard/role tags), storage leaves, and the engine span carrying
    // the cost model's prediction next to observed time.
    for needle in [
        "trace ",
        "wire.request",
        "session.access",
        "shard.worker",
        "shard=0",
        "shard=1",
        "role=",
        "pager.read",
        "access",
        "predicted_ms=",
        "observed_ms=",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }

    // The header names the trace id; db.trace(ID) must replay the same
    // tree after the fact.
    let header = text
        .lines()
        .find(|l| l.starts_with("trace "))
        .expect("tree header");
    let tid: u64 = header
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .expect("numeric trace id in header");
    client
        .send(&Request::Command {
            line: format!("call db.trace({tid})"),
        })
        .unwrap();
    let (_, resp) = client.recv().unwrap();
    let Response::OkText { text: replay } = resp else {
        panic!("db.trace failed: {resp:?}");
    };
    assert!(replay.contains(header), "db.trace lost the tree:\n{replay}");
    assert!(replay.contains("shard.worker"), "{replay}");

    // And the tree really is one linked family under one id.
    let tree = procdb::obs::global().find_trace(tid).unwrap();
    assert!(tree.spans.len() >= 4, "want a multi-layer tree: {tree:?}");
    let by_id: HashMap<u64, u64> = tree
        .spans
        .iter()
        .map(|s| (s.span_id, s.parent_id))
        .collect();
    assert_eq!(
        tree.spans.iter().filter(|s| s.parent_id == 0).count(),
        1,
        "one root"
    );
    for s in &tree.spans {
        assert_eq!(s.trace_id, tid);
        assert!(s.parent_id == 0 || by_id.contains_key(&s.parent_id));
    }
    client.close().unwrap();
    server.stop();
}
