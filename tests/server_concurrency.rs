//! Concurrency test for `procdb-server`: eight clients hammer one
//! served session — four readers stream `access` while four updaters
//! re-key disjoint tuples — and the final view contents must equal a
//! serial replay of the same updates, for all four strategies.
//!
//! The updates are constructed to commute (disjoint victim keys,
//! disjoint fresh target keys), so *any* interleaving the server picks
//! must land in the same final state; a lost or doubly-applied update
//! shows up as a row-set mismatch.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Barrier;

use procdb_core::StrategyKind;
use procdb_query::{FieldType, Organization, Schema, Value};
use procdb_server::{Server, ServerConfig, Session};

const ROWS: i64 = 16;
const UPDATERS: usize = 4;
const READERS: usize = 4;
const UPDATES_PER_CLIENT: i64 = ROWS / UPDATERS as i64;

/// Base table + one view covering both original and re-keyed tuples.
fn build_session(strategy: StrategyKind) -> Session {
    let mut s = Session::new();
    s.create_table(
        "EMP",
        Schema::new(vec![("eid", FieldType::Int), ("grp", FieldType::Int)]),
        Organization::BTree { key_field: 0 },
    )
    .unwrap();
    for i in 0..ROWS {
        s.insert("EMP", vec![Value::Int(i), Value::Int(i % 4)])
            .unwrap();
    }
    s.define_view("define view V (EMP.all) where EMP.eid >= 0 and EMP.eid <= 5000")
        .unwrap();
    s.set_strategy(strategy);
    s.prepare().unwrap();
    s
}

/// Updater `u` owns victims `[u*k, (u+1)*k)`, re-keyed to `victim + 1000`
/// — disjoint from every other victim and target, so updates commute.
fn updates_for(u: usize) -> Vec<(i64, i64)> {
    (u as i64 * UPDATES_PER_CLIENT..(u as i64 + 1) * UPDATES_PER_CLIENT)
        .map(|k| (k, k + 1000))
        .collect()
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let writer = stream.try_clone().unwrap();
        let mut c = Client {
            writer,
            reader: BufReader::new(stream),
        };
        let (_greeting, term) = c.read_response();
        assert_eq!(term, "ok ready");
        c
    }

    /// Data lines up to the `ok`/`err` terminator line.
    fn read_response(&mut self) -> (Vec<String>, String) {
        let mut data = Vec::new();
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line).unwrap();
            assert!(n > 0, "server hung up mid-response");
            let line = line.trim_end().to_string();
            if line == "ok" || line.starts_with("ok ") || line.starts_with("err") {
                return (data, line);
            }
            data.push(line);
        }
    }

    fn cmd(&mut self, line: &str) -> (Vec<String>, String) {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .unwrap();
        self.read_response()
    }
}

/// Sorted rendered rows of `access V` (16 rows fits the display limit,
/// so the response is complete).
fn access_rows(client: &mut Client) -> Vec<String> {
    let (mut data, term) = client.cmd("access V");
    assert_eq!(term, "ok", "access failed: {data:?}");
    assert!(!data.is_empty(), "access returned no header");
    let header = data.remove(0);
    assert!(
        header.contains(" rows in "),
        "garbled access header: {header:?}"
    );
    data.sort();
    data
}

fn run_strategy(strategy: StrategyKind) {
    let session = build_session(strategy);
    let server = Server::start(
        session,
        ServerConfig {
            port: 0,
            max_conns: UPDATERS + READERS + 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let barrier = Barrier::new(UPDATERS + READERS);
    std::thread::scope(|scope| {
        for u in 0..UPDATERS {
            let barrier = &barrier;
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                barrier.wait();
                for (victim, target) in updates_for(u) {
                    let (data, term) = client.cmd(&format!("update {victim} -> {target}"));
                    assert_eq!(term, "ok", "update {victim} failed");
                    assert_eq!(data.len(), 1, "garbled update response: {data:?}");
                    assert!(
                        data[0].starts_with("1 tuple(s) re-keyed"),
                        "update {victim} -> {target} dropped: {data:?}"
                    );
                }
                client.cmd("quit");
            });
        }
        for _ in 0..READERS {
            let barrier = &barrier;
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                barrier.wait();
                for _ in 0..6 {
                    let rows = access_rows(&mut client);
                    // Concurrent snapshots vary in contents but never in
                    // cardinality (updates re-key, they don't add/remove),
                    // and every row must be well-formed.
                    assert_eq!(rows.len(), ROWS as usize, "dropped rows: {rows:?}");
                    for r in &rows {
                        assert!(
                            r.starts_with("  (") && r.ends_with(')'),
                            "garbled row: {r:?}"
                        );
                    }
                }
                client.cmd("quit");
            });
        }
    });

    // Final state over the wire…
    let mut control = Client::connect(addr);
    let concurrent_rows = access_rows(&mut control);
    let (stats, term) = control.cmd("stats");
    assert_eq!(term, "ok");
    assert!(
        stats.iter().any(|l| l.contains("V:")),
        "stats missing the view: {stats:?}"
    );
    control.cmd("quit");
    let final_session = server.stop();

    // …must equal a serial replay of the same (commuting) updates.
    let mut serial = build_session(strategy);
    for u in 0..UPDATERS {
        for (victim, target) in updates_for(u) {
            let (n, _) = serial.update(victim, target).unwrap();
            assert_eq!(n, 1);
        }
    }
    let (rows, _) = serial.access("V").unwrap();
    let mut serial_rows: Vec<String> = serial
        .render_rows(&rows, rows.len())
        .lines()
        .map(|l| l.to_string())
        .collect();
    serial_rows.sort();
    assert_eq!(
        concurrent_rows, serial_rows,
        "{strategy}: concurrent final state diverged from serial replay"
    );

    // The mirror the server hands back agrees too.
    assert_eq!(final_session.tables()[0].rows.len(), ROWS as usize);
}

#[test]
fn concurrent_clients_always_recompute() {
    run_strategy(StrategyKind::AlwaysRecompute);
}

#[test]
fn concurrent_clients_cache_invalidate() {
    run_strategy(StrategyKind::CacheInvalidate);
}

#[test]
fn concurrent_clients_update_cache_avm() {
    run_strategy(StrategyKind::UpdateCacheAvm);
}

#[test]
fn concurrent_clients_update_cache_rvm() {
    run_strategy(StrategyKind::UpdateCacheRvm);
}
