//! Shape agreement between the discrete simulation and the analytical
//! model: the qualitative claims of §5/§7 must hold in *both*.

use procdb::core::StrategyKind;
use procdb::storage::CostConstants;
use procdb::workload::{analytic_prediction, run_strategy, SimConfig, StreamSpec};

fn config() -> SimConfig {
    let mut c = SimConfig::default().scaled_down(50); // N = 2000
    c.n1 = 8;
    c.n2 = 8;
    c.f = 0.01; // 20-tuple objects
    c.l = 6;
    c.seed = 321;
    c
}

fn spec(p: f64) -> StreamSpec {
    StreamSpec {
        p_update: p,
        l: 6,
        z: 0.2,
        ops: 150,
        seed: 11,
    }
}

fn per_access(kind: StrategyKind, p: f64) -> f64 {
    run_strategy(&config(), &spec(p), kind, &CostConstants::default(), None)
        .unwrap()
        .per_access_ms
}

#[test]
fn update_cache_rises_with_p_in_both_worlds() {
    // Simulation.
    let sim_lo = per_access(StrategyKind::UpdateCacheAvm, 0.1);
    let sim_hi = per_access(StrategyKind::UpdateCacheAvm, 0.8);
    assert!(sim_hi > 1.5 * sim_lo, "sim: {sim_lo} -> {sim_hi}");
    // Analytic at the same (scaled) parameters.
    let c = config();
    let a_lo = analytic_prediction(&c, &spec(0.1))[2];
    let a_hi = analytic_prediction(&c, &spec(0.8))[2];
    assert!(a_hi > 1.5 * a_lo, "analytic: {a_lo} -> {a_hi}");
}

#[test]
fn caching_wins_at_low_p_recompute_flat() {
    let ar_lo = per_access(StrategyKind::AlwaysRecompute, 0.1);
    let avm_lo = per_access(StrategyKind::UpdateCacheAvm, 0.1);
    let ci_lo = per_access(StrategyKind::CacheInvalidate, 0.1);
    assert!(
        avm_lo < ar_lo,
        "UC should beat AR at P=0.1: {avm_lo} vs {ar_lo}"
    );
    assert!(
        ci_lo < ar_lo,
        "CI should beat AR at P=0.1: {ci_lo} vs {ar_lo}"
    );
}

#[test]
fn ci_approaches_recompute_plateau_at_high_p() {
    // §5: at high P the CI cost levels off slightly above AR (the wasted
    // cache write-back), nowhere near Update Cache's blow-up.
    let ar = per_access(StrategyKind::AlwaysRecompute, 0.9);
    let ci = per_access(StrategyKind::CacheInvalidate, 0.9);
    let uc = per_access(StrategyKind::UpdateCacheAvm, 0.9);
    assert!(ci < 2.0 * ar, "CI plateau too high: {ci} vs AR {ar}");
    assert!(
        uc > ci,
        "UC should be the one degrading at P=0.9: {uc} vs {ci}"
    );
}

#[test]
fn simulated_magnitudes_within_3x_of_analytic() {
    // The closed forms idealize packing and Yao-count pages; the running
    // system splits B-trees and fragments heaps. Magnitudes must still
    // agree within a small constant factor.
    let c = config();
    let s = spec(0.3);
    for (i, kind) in StrategyKind::ALL.into_iter().enumerate() {
        let sim = run_strategy(&c, &s, kind, &CostConstants::default(), None)
            .unwrap()
            .per_access_ms;
        let analytic = analytic_prediction(&c, &s)[i];
        let ratio = sim / analytic;
        assert!(
            (0.33..=3.0).contains(&ratio),
            "{kind}: sim {sim:.1} vs analytic {analytic:.1} (ratio {ratio:.2})"
        );
    }
}

#[test]
fn expensive_invalidation_recording_hurts_ci_in_sim() {
    // F4 vs F5, simulated: price each recorded invalidation at 60 ms (the
    // read+write-a-flag-page scheme) and CI should get markedly worse,
    // while the other strategies are untouched.
    let cheap = procdb::storage::CostConstants::default();
    let dear = procdb::storage::CostConstants {
        c_inval: 60.0,
        ..cheap
    };
    let c = config();
    let s = spec(0.6);
    let ci_cheap = run_strategy(&c, &s, StrategyKind::CacheInvalidate, &cheap, None)
        .unwrap()
        .per_access_ms;
    let ci_dear = run_strategy(&c, &s, StrategyKind::CacheInvalidate, &dear, None)
        .unwrap()
        .per_access_ms;
    assert!(
        ci_dear > 1.1 * ci_cheap,
        "C_inval=60 should visibly hurt CI: {ci_cheap} -> {ci_dear}"
    );
    let ar_dear = run_strategy(&c, &s, StrategyKind::AlwaysRecompute, &dear, None)
        .unwrap()
        .per_access_ms;
    let ar_cheap = run_strategy(&c, &s, StrategyKind::AlwaysRecompute, &cheap, None)
        .unwrap()
        .per_access_ms;
    assert_eq!(ar_dear, ar_cheap, "AR never records invalidations");
}

#[test]
fn locality_helps_ci_in_sim() {
    // F9, simulated: higher locality (Z = 0.05) lowers CI's cost (hot
    // objects are re-validated and then hit repeatedly before the next
    // conflicting update).
    let c = config();
    let mk = |z: f64| StreamSpec {
        p_update: 0.4,
        l: 6,
        z,
        ops: 300,
        seed: 11,
    };
    let base = run_strategy(
        &config(),
        &mk(0.2),
        StrategyKind::CacheInvalidate,
        &CostConstants::default(),
        None,
    )
    .unwrap()
    .per_access_ms;
    let local = run_strategy(
        &c,
        &mk(0.05),
        StrategyKind::CacheInvalidate,
        &CostConstants::default(),
        None,
    )
    .unwrap()
    .per_access_ms;
    assert!(
        local < base * 1.05,
        "locality should not hurt CI: Z=0.2 -> {base}, Z=0.05 -> {local}"
    );
}

#[test]
fn rvm_beats_avm_with_sharing_in_model2_sim() {
    // §7: in Model 2, sharing makes RVM the better Update Cache variant.
    let mut c = config();
    c.joins = 2;
    c.sf = 1.0;
    let s = spec(0.6);
    let avm = run_strategy(
        &c,
        &s,
        StrategyKind::UpdateCacheAvm,
        &CostConstants::default(),
        None,
    )
    .unwrap()
    .per_access_ms;
    let rvm = run_strategy(
        &c,
        &s,
        StrategyKind::UpdateCacheRvm,
        &CostConstants::default(),
        None,
    )
    .unwrap()
    .per_access_ms;
    assert!(
        rvm < avm,
        "RVM {rvm} should beat AVM {avm} at SF=1, model 2"
    );
}
