//! Cross-crate integration: every strategy must serve *exactly* the same
//! answers on identical randomized workloads — Always Recompute is the
//! ground truth, and caching/maintenance must be invisible to queries.

use procdb::core::StrategyKind;
use procdb::storage::CostConstants;
use procdb::workload::{run_all_strategies, run_strategy, SimConfig, StreamSpec};

fn base_config(joins: usize, seed: u64) -> SimConfig {
    let mut c = SimConfig::default().scaled_down(100); // N = 1000
    c.n1 = 5;
    c.n2 = 5;
    c.f = 0.02; // 20-tuple objects
    c.l = 8;
    c.joins = joins;
    c.seed = seed;
    c
}

#[test]
fn all_strategies_serve_identical_answers_model1() {
    let c = base_config(1, 71);
    let spec = StreamSpec {
        p_update: 0.5,
        l: 8,
        z: 0.2,
        ops: 80,
        seed: 5,
    };
    // verify_every = 1: every single access is checked against a fresh
    // recompute inside the runner.
    let outcomes = run_all_strategies(&c, &spec, &CostConstants::default(), Some(1)).unwrap();
    for o in &outcomes {
        assert!(
            o.verified >= 30,
            "{}: too few verified accesses",
            o.strategy
        );
        assert_eq!(o.mismatches, 0, "{} diverged from recompute", o.strategy);
    }
}

#[test]
fn all_strategies_serve_identical_answers_model2() {
    let c = base_config(2, 72);
    let spec = StreamSpec {
        p_update: 0.5,
        l: 8,
        z: 0.2,
        ops: 80,
        seed: 6,
    };
    let outcomes = run_all_strategies(&c, &spec, &CostConstants::default(), Some(1)).unwrap();
    for o in &outcomes {
        assert_eq!(o.mismatches, 0, "{} diverged from recompute", o.strategy);
    }
}

#[test]
fn correctness_survives_update_heavy_streams() {
    // P = 0.9: caches are churned constantly; sharing SF = 1 stresses the
    // shared α-memory path.
    let mut c = base_config(2, 73);
    c.sf = 1.0;
    let spec = StreamSpec {
        p_update: 0.9,
        l: 8,
        z: 0.2,
        ops: 100,
        seed: 7,
    };
    for kind in [StrategyKind::CacheInvalidate, StrategyKind::UpdateCacheRvm] {
        let o = run_strategy(&c, &spec, kind, &CostConstants::default(), Some(1)).unwrap();
        assert_eq!(o.mismatches, 0, "{kind} diverged under churn");
    }
}

#[test]
fn correctness_with_zero_sharing_and_full_sharing() {
    for sf in [0.0, 1.0] {
        let mut c = base_config(1, 74);
        c.sf = sf;
        let spec = StreamSpec {
            p_update: 0.4,
            l: 8,
            z: 0.2,
            ops: 60,
            seed: 8,
        };
        let o = run_strategy(
            &c,
            &spec,
            StrategyKind::UpdateCacheRvm,
            &CostConstants::default(),
            Some(1),
        )
        .unwrap();
        assert_eq!(o.mismatches, 0, "RVM diverged at SF = {sf}");
    }
}

#[test]
fn selection_only_population() {
    // Figure 8's population: N2 = 0, single-tuple objects.
    let mut c = base_config(1, 75);
    c.n1 = 8;
    c.n2 = 0;
    c.f = 1.0 / c.n as f64;
    let spec = StreamSpec {
        p_update: 0.5,
        l: 4,
        z: 0.2,
        ops: 60,
        seed: 9,
    };
    let outcomes = run_all_strategies(&c, &spec, &CostConstants::default(), Some(1)).unwrap();
    for o in &outcomes {
        assert_eq!(o.mismatches, 0, "{} diverged", o.strategy);
    }
}
