//! Engine-level property test: for *arbitrary* seeded workloads (not just
//! the fixed seeds of the integration tests), every strategy serves
//! exactly the answers a fresh recompute would — the repository's central
//! correctness invariant, fuzzed.

use proptest::prelude::*;

use procdb::storage::CostConstants;
use procdb::workload::{run_all_strategies, SimConfig, StreamSpec};

proptest! {
    // Each case runs 4 engines over a ~40-op stream on a 1000-tuple
    // database; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn strategies_agree_on_random_workloads(
        data_seed in 0u64..1_000_000,
        stream_seed in 0u64..1_000_000,
        p_update in 0.1f64..0.9,
        joins in 1usize..3,
        sf in prop_oneof![Just(0.0f64), Just(0.5), Just(1.0)],
    ) {
        let mut c = SimConfig::default().scaled_down(100); // N = 1000
        c.n1 = 3;
        c.n2 = 3;
        c.f = 0.015; // 15-tuple objects
        c.l = 5;
        c.joins = joins;
        c.sf = sf;
        c.seed = data_seed;
        let spec = StreamSpec {
            p_update,
            l: 5,
            z: 0.2,
            ops: 40,
            seed: stream_seed,
        };
        // verify_every = 1: every access of every strategy is checked
        // against an uncharged fresh recompute inside the runner.
        let outcomes = run_all_strategies(&c, &spec, &CostConstants::default(), Some(1))
            .expect("simulation runs");
        for o in &outcomes {
            prop_assert_eq!(
                o.mismatches, 0,
                "{} diverged (data_seed={}, stream_seed={})",
                o.strategy, data_seed, stream_seed
            );
        }
    }
}
