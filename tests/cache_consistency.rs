//! Front-cache consistency, fuzzed end to end over TCP: a served
//! session with the result cache **on** replays a seeded schedule of
//! accesses, re-keys, crashes, promotions, and message-chaos windows,
//! and every `access` response must be row-identical to a cache-off
//! serial oracle server replaying the same schedule — for all four
//! maintenance strategies, 1–4 shards, and 1–3 replicas per group.
//!
//! The property this pins down: delta-stream invalidation may *miss* a
//! hit (a conservative flash costs a recompute) but may never *serve* a
//! stale body. Accordingly the closing scrape asserts
//! `stale_served == 0` while `invalidations > 0` — the schedule ends
//! with a deterministic fill-then-overlapping-update leg so every case
//! actually exercises the invalidation path rather than vacuously
//! passing on an idle cache.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use proptest::prelude::*;

use procdb_server::{Server, ServerConfig, Session};

/// Tuples in the base relation; every view stays below the renderer's
/// truncation threshold even if re-keys pile all of them into one
/// window.
const ROWS: i64 = 18;
/// Re-key target space. The three view windows tile it completely, so
/// every applied re-key overlaps at least one cached view.
const KEY_SPACE: i64 = 42;
/// Ops per schedule (before the deterministic closing leg).
const OPS: usize = 32;
const MAX_RETRIES: usize = 400;

/// The three windows tiling `[0, KEY_SPACE)`.
const WINDOWS: [(i64, i64); 3] = [(0, 13), (14, 27), (28, 41)];

/// Splitmix-style step; deterministic schedule choices per seed.
fn next(rng: &mut u64) -> u64 {
    *rng = rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *rng;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let writer = stream.try_clone().unwrap();
        let mut c = Client {
            writer,
            reader: BufReader::new(stream),
        };
        let (_greeting, term) = c.read_response();
        assert_eq!(term, "ok ready");
        c
    }

    fn read_response(&mut self) -> (Vec<String>, String) {
        let mut data = Vec::new();
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line).unwrap();
            assert!(n > 0, "server hung up mid-response");
            let line = line.trim_end().to_string();
            if line == "ok" || line.starts_with("ok ") || line.starts_with("err") {
                return (data, line);
            }
            data.push(line);
        }
    }

    fn cmd(&mut self, line: &str) -> (Vec<String>, String) {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .unwrap();
        self.read_response()
    }

    /// Run a command, retrying the flow-control sheds (`BUSY`,
    /// `DEADLINE`, `FENCED`) the way a real client would; any other
    /// `err` is a test failure.
    fn cmd_ok(&mut self, line: &str) -> Vec<String> {
        for _ in 0..MAX_RETRIES {
            let (data, term) = self.cmd(line);
            if term.starts_with("err BUSY")
                || term.starts_with("err DEADLINE")
                || term.starts_with("err FENCED")
            {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            assert!(!term.starts_with("err"), "{line:?} failed: {term}");
            return data;
        }
        panic!("{line:?} still shed after {MAX_RETRIES} retries");
    }

    /// Sorted data rows of `access NAME`, header stripped.
    fn access_rows(&mut self, view: &str) -> Vec<String> {
        let mut data = self.cmd_ok(&format!("access {view}"));
        assert!(!data.is_empty(), "access {view} returned no header");
        let header = data.remove(0);
        assert!(
            header.contains(" rows in "),
            "garbled access header: {header:?}"
        );
        data.sort();
        data
    }
}

/// Boot a server and build the shared fixture over the wire: `EMP` with
/// `ROWS` tuples, three views tiling the key space, the requested
/// topology and strategy, and the front cache forced on or off.
fn start(strategy: &str, shards: usize, replicas: usize, cache_on: bool) -> (Server, Client) {
    let server = Server::start(
        Session::new(),
        ServerConfig {
            port: 0,
            max_conns: 4,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut c = Client::connect(server.addr());
    c.cmd_ok("create table EMP (eid int, grp int) btree eid");
    for eid in 0..ROWS {
        c.cmd_ok(&format!("insert EMP ({eid}, {})", eid % 3));
    }
    for (i, (lo, hi)) in WINDOWS.iter().enumerate() {
        c.cmd_ok(&format!(
            "define view V{i} (EMP.all) where EMP.eid >= {lo} and EMP.eid <= {hi}"
        ));
    }
    if shards > 1 {
        c.cmd_ok(&format!("shards {shards}"));
    }
    if replicas > 1 {
        c.cmd_ok(&format!("replicas {replicas}"));
    }
    c.cmd_ok(&format!("strategy {strategy}"));
    c.cmd_ok(if cache_on { "cache on" } else { "cache off" });
    (server, c)
}

/// Parse `k=v` counters off the `totals:` line of `cache stats`.
fn cache_totals(c: &mut Client) -> std::collections::HashMap<String, u64> {
    let data = c.cmd_ok("cache stats");
    let totals = data
        .iter()
        .find_map(|l| l.strip_prefix("totals:"))
        .expect("cache stats has a totals line");
    totals
        .split_whitespace()
        .filter_map(|kv| kv.split_once('='))
        .filter_map(|(k, v)| v.parse::<u64>().ok().map(|v| (k.to_string(), v)))
        .collect()
}

fn run_schedule(strategy: &str, shards: usize, replicas: usize, seed: u64) {
    let ctx = format!("strategy={strategy} shards={shards} replicas={replicas} seed={seed}");
    let (sut_server, mut sut) = start(strategy, shards, replicas, true);
    // The oracle is the simplest correct server: one engine, no
    // replicas, no cache, always-recompute.
    let (oracle_server, mut oracle) = start("recompute", 1, 1, false);

    let mut rng = seed;
    // Live keys, so re-keys stay collision-free and both servers agree
    // on which tuple moved.
    let mut keys: Vec<i64> = (0..ROWS).collect();
    let mut chaos_on = false;

    let check_view = |sut: &mut Client, oracle: &mut Client, v: usize| {
        let got = sut.access_rows(&format!("V{v}"));
        let want = oracle.access_rows(&format!("V{v}"));
        assert_eq!(got, want, "{ctx}: V{v} diverged from the serial oracle");
    };
    let update_both =
        |sut: &mut Client, oracle: &mut Client, keys: &mut Vec<i64>, rng: &mut u64| {
            let at = (next(rng) % keys.len() as u64) as usize;
            let victim = keys[at];
            let mut new_key = next(rng) as i64 % KEY_SPACE;
            while keys.contains(&new_key) {
                new_key = (new_key + 1) % KEY_SPACE;
            }
            sut.cmd_ok(&format!("update {victim} -> {new_key}"));
            oracle.cmd_ok(&format!("update {victim} -> {new_key}"));
            keys[at] = new_key;
        };

    for _ in 0..OPS {
        match next(&mut rng) % 100 {
            // Reads dominate: that is what keeps the cache populated in
            // the window every other leg tries to make stale.
            0..=54 => {
                let v = (next(&mut rng) % WINDOWS.len() as u64) as usize;
                check_view(&mut sut, &mut oracle, v);
            }
            55..=79 => update_both(&mut sut, &mut oracle, &mut keys, &mut rng),
            80..=89 if replicas >= 2 => {
                // Failure leg: crash a shard's primary (a follower is
                // promoted in-line), rejoin it, sometimes force one
                // more promotion. Epoch fences must flash the affected
                // cached guards, never serve across them.
                let s = next(&mut rng) % shards as u64;
                sut.cmd_ok(&format!("crash {s}"));
                sut.cmd_ok(&format!("recover {s}"));
                if next(&mut rng).is_multiple_of(2) {
                    sut.cmd_ok(&format!("promote {s}"));
                }
            }
            90..=99 if replicas >= 2 => {
                if chaos_on {
                    sut.cmd_ok("chaos off");
                    sut.cmd_ok("resync");
                } else {
                    sut.cmd_ok(&format!(
                        "chaos inject --seed {seed} --delay 0.25 --delay-ms 0 1 \
                         --drop 0.05 --dup 0.1 --reorder 0.1 --fence 0.05"
                    ));
                }
                chaos_on = !chaos_on;
            }
            _ => {
                let v = (next(&mut rng) % WINDOWS.len() as u64) as usize;
                check_view(&mut sut, &mut oracle, v);
            }
        }
    }
    if chaos_on {
        sut.cmd_ok("chaos off");
        sut.cmd_ok("resync");
    }

    // Deterministic closing leg: fill every view, re-key a live tuple
    // (the windows tile the key space, so some cached view must be
    // invalidated), and re-check everything. This guarantees the
    // stale_served==0 assertion below is tested against a cache that
    // demonstrably invalidated something.
    for v in 0..WINDOWS.len() {
        check_view(&mut sut, &mut oracle, v);
    }
    update_both(&mut sut, &mut oracle, &mut keys, &mut rng);
    for v in 0..WINDOWS.len() {
        check_view(&mut sut, &mut oracle, v);
    }

    let totals = cache_totals(&mut sut);
    assert_eq!(
        totals.get("stale_served"),
        Some(&0),
        "{ctx}: cache served a stale body: {totals:?}"
    );
    assert!(
        totals.get("invalidations").copied().unwrap_or(0) > 0,
        "{ctx}: schedule never exercised invalidation: {totals:?}"
    );
    assert!(
        totals.get("hits").copied().unwrap_or(0) > 0,
        "{ctx}: schedule never hit the cache: {totals:?}"
    );

    let _ = sut.cmd("quit");
    let _ = oracle.cmd("quit");
    sut_server.stop();
    oracle_server.stop();
}

proptest! {
    // Each case replays the schedule on all four strategies — two TCP
    // servers per strategy — so keep the case budget modest (matches
    // the partition-chaos fuzz).
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn cached_reads_match_the_serial_oracle(
        seed in 0u64..1_000_000,
        shards in 1usize..=4,
        replicas in 1usize..=3,
    ) {
        for strategy in ["recompute", "cache", "avm", "rvm"] {
            run_schedule(strategy, shards, replicas, seed);
        }
    }
}

/// Pinned regression: the exact shape the paper's Model 1 cares about —
/// one shard, no replicas, cache on — must invalidate on an
/// overlapping re-key and keep serving hits on the untouched windows.
#[test]
fn overlapping_rekey_invalidates_only_the_touched_windows() {
    let (server, mut c) = start("recompute", 1, 1, true);
    for v in 0..WINDOWS.len() {
        let _ = c.access_rows(&format!("V{v}"));
    }
    let before = cache_totals(&mut c);
    // 0 lives in V0's window; 20 lands in V1's. V2 is untouched.
    c.cmd_ok("update 0 -> 20");
    let _ = c.access_rows("V2");
    let after = cache_totals(&mut c);
    assert!(
        after["invalidations"] > before["invalidations"],
        "overlapping re-key must invalidate: {before:?} -> {after:?}"
    );
    assert!(
        after["hits"] > before["hits"],
        "untouched window must still hit: {before:?} -> {after:?}"
    );
    assert_eq!(after["stale_served"], 0);
    let _ = c.cmd("quit");
    server.stop();
}
