//! The paper's §5/§7/§8 qualitative claims, asserted against the
//! analytical model end-to-end through the public facade.

use procdb::costmodel::{
    best_update_cache, cost, headline_speedups, model2, paper_figures, region_grid, Family, Model,
    Params, Strategy,
};

#[test]
fn s8_headline_factors() {
    let (ci, uc) = headline_speedups();
    assert!(ci > 3.0, "CI speedup {ci} too small vs paper ~5x");
    assert!(uc > 5.0, "UC speedup {uc} too small vs paper ~7x");
    assert!(uc > ci);
}

#[test]
fn model2_crossover_near_047() {
    let sf = model2::avm_rvm_crossover_sf(&Params::default().with_update_probability(0.5))
        .expect("crossover exists in model 2");
    assert!((0.35..=0.6).contains(&sf), "crossover = {sf}");
}

#[test]
fn model1_avm_never_significantly_worse_than_rvm() {
    // §5 (Figure 11): "the cost of RVM becomes comparable to AVM only
    // when almost every type P2 procedure has a shared subexpression" —
    // AVM wins below SF ≈ 0.9, RVM at most edges ahead near SF = 1.
    for i in 0..=10 {
        let sf = i as f64 / 10.0;
        let p = Params::default().with_sf(sf).with_update_probability(0.5);
        let avm = cost(Model::One, Strategy::UpdateCacheAvm, &p);
        let rvm = cost(Model::One, Strategy::UpdateCacheRvm, &p);
        if sf < 0.9 {
            assert!(avm <= rvm, "model 1, SF = {sf}: AVM {avm} vs RVM {rvm}");
        } else {
            assert!(
                (rvm - avm).abs() / avm < 0.1,
                "model 1, SF = {sf}: costs should be comparable (AVM {avm}, RVM {rvm})"
            );
        }
    }
}

#[test]
fn update_cache_blows_up_at_high_p_ci_does_not() {
    let hi = Params::default().with_update_probability(0.95);
    let ar = cost(Model::One, Strategy::AlwaysRecompute, &hi);
    let ci = cost(Model::One, Strategy::CacheInvalidate, &hi);
    let uc = cost(Model::One, Strategy::UpdateCacheAvm, &hi);
    assert!(uc > 3.0 * ar, "UC should degrade severely: {uc} vs AR {ar}");
    assert!(ci < 1.2 * ar, "CI plateau stays near AR: {ci} vs {ar}");
}

#[test]
fn large_objects_favor_update_cache_at_low_p() {
    // §8: "Update Cache is significantly better than CI for large objects
    // when update probability is low."
    let p = Params::default().with_f(0.01).with_update_probability(0.1);
    let ci = cost(Model::One, Strategy::CacheInvalidate, &p);
    let (_, uc) = best_update_cache(Model::One, &p);
    assert!(uc < 0.75 * ci, "UC {uc} should clearly beat CI {ci}");
}

#[test]
fn small_objects_make_ci_competitive() {
    // §5 (Figure 7): for f = 0.0001, CI is close to UC at low P and does
    // not degrade at high P.
    let lo = Params::default()
        .with_f(0.0001)
        .with_update_probability(0.2);
    let ci = cost(Model::One, Strategy::CacheInvalidate, &lo);
    let (_, uc) = best_update_cache(Model::One, &lo);
    assert!(ci < 2.0 * uc, "CI {ci} should be within 2x of UC {uc}");
}

#[test]
fn winner_regions_have_paper_structure() {
    let g = region_grid(Model::One, &Params::default());
    let (ar_share, _, uc_share) = g.family_shares();
    assert!(uc_share > 0.4, "UC should dominate low-P cells");
    assert!(ar_share > 0.1, "AR should own the high-P band");
    // The UC region shrinks (in P) as objects grow: compare the highest-f
    // row with the lowest-f row.
    let np = g.p_values.len();
    let uc_cols = |fi: usize| {
        (0..np)
            .filter(|&pi| g.cells[fi * np + pi].winner == Family::UpdateCache)
            .count()
    };
    assert!(uc_cols(0) >= uc_cols(g.f_values.len() - 1));
}

#[test]
fn every_figure_series_is_positive_and_finite() {
    for fig in paper_figures() {
        for s in &fig.series {
            for (x, y) in &s.points {
                assert!(
                    y.is_finite() && *y >= 0.0,
                    "{} {:?} at x={x}",
                    fig.id,
                    s.strategy
                );
            }
        }
    }
}

#[test]
fn f15_no_false_invalidation_helps_ci() {
    // With f2 = 1 a broken lock always means a real change, so CI's
    // cost can only improve (fewer wasted recomputes).
    let base = Params::default().with_update_probability(0.3);
    let with_false = cost(Model::One, Strategy::CacheInvalidate, &base);
    let without = cost(Model::One, Strategy::CacheInvalidate, &base.with_f2(1.0));
    // f2 = 1 also makes P2 objects bigger, so compare the *relative* gap
    // to Update Cache, as Figure 15 does.
    let uc_with = best_update_cache(Model::One, &Params::default().with_update_probability(0.3)).1;
    let uc_without = best_update_cache(
        Model::One,
        &Params::default().with_update_probability(0.3).with_f2(1.0),
    )
    .1;
    assert!(without / uc_without <= with_false / uc_with * 1.05);
}
