//! Aggregation through database procedures — the paper's motivating use
//! case (5): a continuously maintained per-department headcount and
//! payroll dashboard.
//!
//! The dashboard is an [`AggregateView`] over an employee relation.
//! Self-maintainable aggregates (COUNT/SUM) make every refresh a
//! single-page patch; reading the dashboard is one page, regardless of
//! how many employees exist.
//!
//! ```text
//! cargo run --release --example aggregate_dashboard
//! ```

use procdb::avm::{AggFn, AggregateView, Delta, ViewDef};
use procdb::query::{Catalog, FieldType, Organization, Predicate, Schema, Table, Value};
use procdb::storage::{CostConstants, Pager};

fn main() {
    let pager = Pager::new_default();
    pager.set_charging(false);
    // EMP(emp_id, dept, salary)
    let schema = Schema::new(vec![
        ("emp_id", FieldType::Int),
        ("dept", FieldType::Int),
        ("salary", FieldType::Int),
    ]);
    let mut emp = Table::create(
        pager.clone(),
        "EMP",
        schema,
        Organization::BTree { key_field: 0 },
        0,
    )
    .unwrap();
    for i in 0..5_000i64 {
        emp.insert(&vec![
            Value::Int(i),
            Value::Int(i % 8),
            Value::Int(40_000 + (i * 97) % 60_000),
        ])
        .unwrap();
    }
    pager.ledger().reset();
    pager.set_charging(true);
    let mut catalog = Catalog::new();
    catalog.add(emp);

    // The stored procedure: per-department COUNT(*) and SUM(salary).
    let def = ViewDef {
        base: "EMP".into(),
        selection: Predicate::always(),
        joins: vec![],
    };
    let mut dash = AggregateView::new(
        pager.clone(),
        "payroll-dashboard",
        def,
        1,
        AggFn::CountAndSum { field: 2 },
    );
    pager.set_charging(false);
    dash.recompute_full(&catalog).unwrap();
    pager.set_charging(true);
    pager.ledger().reset();

    let constants = CostConstants::default();

    // Reading the dashboard: one page, not a 5000-tuple aggregation.
    let s0 = pager.ledger().snapshot();
    let rows = dash.read_all().unwrap();
    let read_ms = pager.ledger().snapshot().since(&s0).priced(&constants);
    println!(
        "dashboard ({} departments, read cost {read_ms:.0} ms):",
        rows.len()
    );
    println!(
        "{:>6} {:>10} {:>14} {:>12}",
        "dept", "headcount", "payroll", "avg salary"
    );
    for g in &rows {
        println!(
            "{:>6} {:>10} {:>14} {:>12.0}",
            g.group,
            g.count,
            g.sum,
            g.sum as f64 / g.count as f64
        );
    }

    // An employee transfers from dept 3 to dept 5: two single-page patches.
    let moved = {
        let emp = catalog.get_mut("EMP").unwrap();
        let old = emp.delete_where(123, |_| true).unwrap().unwrap();
        let mut new = old.clone();
        new[1] = Value::Int(5);
        emp.insert(&new).unwrap();
        Delta::from_modifications([(old, new)])
    };
    let s1 = pager.ledger().snapshot();
    dash.apply_delta(&moved, &catalog).unwrap();
    let maint = pager.ledger().snapshot().since(&s1);
    println!(
        "\nemployee #123 transferred dept 3 → 5: maintenance cost {:.0} ms \
         ({} page writes, {} screens)",
        maint.priced(&constants),
        maint.page_writes,
        maint.screens
    );
    let d3 = dash.get(3).unwrap();
    let d5 = dash.get(5).unwrap();
    println!(
        "dept 3 now {} heads; dept 5 now {} heads",
        d3.count, d5.count
    );
    assert_eq!(d3.count + d5.count, 1250);
}
