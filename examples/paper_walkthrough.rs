//! The paper's §2 worked example, end to end: define `PROGS1` and
//! `CLERKS1` in the paper's own `define view` syntax, build one shared
//! Rete network for both, then insert Susan's tuple and watch the token
//! propagate exactly as the paper narrates.
//!
//! ```text
//! cargo run --release --example paper_walkthrough
//! ```

use procdb::core::{parse_define_view, Engine, EngineOptions, ProcedureDef, StrategyKind};
use procdb::query::{Catalog, FieldType, Organization, Schema, Table, Value};
use procdb::storage::Pager;

const JOB_W: usize = 12;

/// Fixed-width byte encoding of a job/department name.
fn padded(s: &str) -> Value {
    let mut b = s.as_bytes().to_vec();
    b.resize(JOB_W, 0);
    Value::Bytes(b)
}

fn main() {
    // --- The paper's schema (§2): EMP(name, age, dept, salary, job),
    // DEPT(dname, floor). Employees clustered by an id; departments
    // hash-organized on dname (keys are integers in this engine).
    let pager = Pager::new_default();
    pager.set_charging(false);
    let emp_schema = Schema::new(vec![
        ("eid", FieldType::Int),
        ("age", FieldType::Int),
        ("dept", FieldType::Int),
        ("salary", FieldType::Int),
        ("job", FieldType::Bytes(JOB_W)),
    ]);
    let dept_schema = Schema::new(vec![("dname", FieldType::Int), ("floor", FieldType::Int)]);
    let mut emp = Table::create(
        pager.clone(),
        "EMP",
        emp_schema,
        Organization::BTree { key_field: 0 },
        0,
    )
    .unwrap();
    let mut dept = Table::create(
        pager.clone(),
        "DEPT",
        dept_schema,
        Organization::Hash { key_field: 0 },
        8,
    )
    .unwrap();
    // Departments: 0 = Accounting (floor 1), 1 = Shipping (floor 2).
    const ACCOUNTING: i64 = 0;
    dept.insert(&vec![Value::Int(ACCOUNTING), Value::Int(1)])
        .unwrap();
    dept.insert(&vec![Value::Int(1), Value::Int(2)]).unwrap();
    for (eid, age, d, sal, job) in [
        (1i64, 31i64, ACCOUNTING, 28_000i64, "Programmer"),
        (2, 45, ACCOUNTING, 24_000, "Clerk"),
        (3, 29, 1, 31_000, "Programmer"),
        (4, 52, 1, 22_000, "Clerk"),
    ] {
        emp.insert(&vec![
            Value::Int(eid),
            Value::Int(age),
            Value::Int(d),
            Value::Int(sal),
            padded(job),
        ])
        .unwrap();
    }
    pager.ledger().reset();
    pager.set_charging(true);
    let mut catalog = Catalog::new();
    catalog.add(emp);
    catalog.add(dept);

    // --- The paper's two view definitions, in its own syntax (§2).
    let progs1_src = r#"define view PROGS1 (EMP.all, DEPT.all)
        where EMP.dept = DEPT.dname
        and EMP.job = "Programmer"
        and DEPT.floor = 1"#;
    let clerks1_src = r#"define view CLERKS1 (EMP.all, DEPT.all)
        where EMP.dept = DEPT.dname
        and EMP.job = "Clerk"
        and DEPT.floor = 1"#;
    let progs1 = parse_define_view(progs1_src, &catalog).expect("PROGS1 parses");
    let clerks1 = parse_define_view(clerks1_src, &catalog).expect("CLERKS1 parses");
    println!("parsed the paper's views:\n\n{progs1_src}\n\n{clerks1_src}\n");
    println!(
        "PROGS1 precompiled plan:\n{}",
        progs1.view.to_plan().explain()
    );

    // --- One shared Rete network maintains both (the paper's Figure 1:
    // the EMP t-const chain forks at job = Programmer / job = Clerk, and
    // the DEPT "floor = 1" α-memory is shared).
    let procs = vec![
        ProcedureDef::new(0, progs1.name, progs1.view),
        ProcedureDef::new(1, clerks1.name, clerks1.view),
    ];
    let mut engine = Engine::new(
        pager,
        catalog,
        procs,
        StrategyKind::UpdateCacheRvm,
        EngineOptions {
            r1: "EMP".to_string(),
            r1_key_field: 0,
            rvm_base_probe_field: 2, // EMP.dept, the join attribute
            rvm_update_frequencies: None,
            clear_buffer_between_ops: true,
            shard: None,
        },
    )
    .unwrap();
    let stats = engine.rete_stats().unwrap();
    println!(
        "shared Rete network: {} memory nodes, {} and-nodes, {} t-const chains",
        stats.memory_nodes, stats.and_nodes, stats.tconst_nodes
    );

    let before_p = engine.access(0).unwrap().len();
    let before_c = engine.access(1).unwrap().len();
    println!("\nbefore: |PROGS1| = {before_p}, |CLERKS1| = {before_c}");

    // --- The paper's token walk: insert
    //     t = <name="Susan", age=28, dept="Accounting", salary=30K,
    //          job="Programmer">
    println!("\ninserting <Susan, 28, Accounting, 30K, Programmer> into EMP ...");
    engine
        .apply_insert(&[vec![
            Value::Int(5), // Susan's id
            Value::Int(28),
            Value::Int(ACCOUNTING),
            Value::Int(30_000),
            padded("Programmer"),
        ]])
        .unwrap();

    let after_p = engine.access(0).unwrap().len();
    let after_c = engine.access(1).unwrap().len();
    println!("after:  |PROGS1| = {after_p}, |CLERKS1| = {after_c}");
    assert_eq!(after_p, before_p + 1, "Susan joined PROGS1");
    assert_eq!(after_c, before_c, "CLERKS1 untouched");
    println!();
    println!("Susan's [+, t] token passed \"relation = EMP\", failed \"job = Clerk\"");
    println!("(discarded on that branch), passed \"job = Programmer\", joined the");
    println!("<Accounting, floor 1> tuple waiting in the shared DEPT α-memory, and");
    println!("the combined token landed in the PROGS1 β-memory — §2, verbatim.");
}
