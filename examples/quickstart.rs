//! Quickstart: define database procedures, serve them with each of the
//! paper's four strategies, and compare the measured cost per access.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use procdb::core::StrategyKind;
use procdb::storage::CostConstants;
use procdb::workload::{run_all_strategies, SimConfig, StreamSpec};

fn main() {
    // The paper's default database, shrunk 20x so the example runs in
    // moments: N = 5,000 R1 tuples, 100 procedures (50 selections P1,
    // 50 two-way joins P2), f = 0.001 of the key space each.
    let mut config = SimConfig::default().scaled_down(20);
    config.n1 = 50;
    config.n2 = 50;
    config.f = 0.004; // 20-tuple objects at this scale
    config.l = 10; // keep the analytical comparison on the same workload
    config.seed = 2024;

    // A mixed workload: 30% updates (each rewriting l = 10 keys of R1),
    // 70% procedure accesses with 80/20 locality.
    let stream = StreamSpec {
        p_update: 0.3,
        l: 10,
        z: 0.2,
        ops: 400,
        seed: 7,
    };

    println!("procdb quickstart — Hanson (SIGMOD 1988) strategies head-to-head");
    println!(
        "database: |R1| = {}, |R2| = {}, |R3| = {}, {} procedures",
        config.n,
        config.n_r2(),
        config.n_r3(),
        config.n1 + config.n2
    );
    println!(
        "workload: {} ops, P(update) = {}, l = {}, Z = {}\n",
        stream.ops, stream.p_update, stream.l, stream.z
    );

    let constants = CostConstants::default(); // C1=1ms, C2=30ms, C3=1ms
    let outcomes =
        run_all_strategies(&config, &stream, &constants, Some(25)).expect("simulation runs");

    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "strategy", "accesses", "pageIO", "screens", "ms/access", "verified"
    );
    for o in &outcomes {
        println!(
            "{:<18} {:>10} {:>10} {:>10} {:>12.1} {:>7}/{:<2}",
            o.strategy.label(),
            o.accesses,
            o.work.page_ios(),
            o.work.screens,
            o.per_access_ms,
            o.verified - o.mismatches,
            o.verified,
        );
        assert_eq!(o.mismatches, 0, "a strategy served a stale answer!");
    }

    let best = outcomes
        .iter()
        .min_by(|a, b| a.per_access_ms.partial_cmp(&b.per_access_ms).unwrap())
        .unwrap();
    println!(
        "\nwinner at this update rate: {} ({:.1} ms/access)",
        best.strategy.label(),
        best.per_access_ms
    );

    // What does the paper's analytical model say for these parameters?
    let rec = procdb::core::recommend(
        procdb::costmodel::Model::One,
        &config.to_params().with_update_probability(stream.p_update),
    );
    println!(
        "analytical model recommends: {} (margin {:.2}x over runner-up)",
        rec.strategy.label(),
        rec.margin
    );
    assert_ne!(
        best.strategy,
        StrategyKind::AlwaysRecompute,
        "at 30% updates a caching strategy should win"
    );
}
