//! Forms with shared subobjects — the paper's motivating use case (3):
//! "complex objects with shared subobjects (e.g. a form with trim, labels
//! and icons)".
//!
//! Each *form* is a database procedure joining a FORMS relation to a
//! shared WIDGETS relation. Many forms share the same widget filter, so
//! the shared Rete strategy (RVM) materializes that subexpression once,
//! while AVM maintains it separately per form. This example shows the
//! Rete network is physically smaller and cheaper to maintain when
//! sharing is high — the paper's `SF` effect, live.
//!
//! ```text
//! cargo run --release --example forms_cache
//! ```

use procdb::avm::{JoinStep, ViewDef};
use procdb::core::{Engine, EngineOptions, ProcedureDef, StrategyKind};
use procdb::query::{
    Catalog, CompOp, FieldType, Organization, Predicate, Schema, Table, Term, Value,
};
use procdb::storage::{CostConstants, Pager};

/// FORMS(form_id, widget_class, pad): which widget class each form pulls.
fn forms_schema() -> Schema {
    Schema::new(vec![
        ("form_id", FieldType::Int),
        ("widget_class", FieldType::Int),
        ("pad", FieldType::Bytes(40)),
    ])
}

/// WIDGETS(class, kind, pad): the shared subobject library.
fn widgets_schema() -> Schema {
    Schema::new(vec![
        ("class", FieldType::Int),
        ("kind", FieldType::Int),
        ("pad", FieldType::Bytes(40)),
    ])
}

fn build_catalog(pager: &std::sync::Arc<Pager>) -> Catalog {
    pager.set_charging(false);
    let mut forms = Table::create(
        pager.clone(),
        "R1",
        forms_schema(),
        Organization::BTree { key_field: 0 },
        0,
    )
    .unwrap();
    let mut widgets = Table::create(
        pager.clone(),
        "WIDGETS",
        widgets_schema(),
        Organization::Hash { key_field: 0 },
        64,
    )
    .unwrap();
    for i in 0..2_000i64 {
        forms
            .insert(&vec![
                Value::Int(i),
                Value::Int(i % 64),
                Value::Bytes(vec![0; 4]),
            ])
            .unwrap();
    }
    for c in 0..64i64 {
        widgets
            .insert(&vec![
                Value::Int(c),
                Value::Int(c % 3),
                Value::Bytes(vec![1; 4]),
            ])
            .unwrap();
    }
    pager.ledger().reset();
    pager.set_charging(true);
    let mut cat = Catalog::new();
    cat.add(forms);
    cat.add(widgets);
    cat
}

/// A "form" procedure: forms in an id window, joined to their widgets,
/// trimmed to `kind = 0` widgets (labels, say).
fn form_procedure(id: u32, lo: i64, hi: i64) -> ProcedureDef {
    ProcedureDef::new(
        id,
        format!("form-window-{id}"),
        ViewDef {
            base: "R1".into(),
            selection: Predicate::int_range(0, lo, hi),
            joins: vec![JoinStep {
                inner: "WIDGETS".into(),
                outer_key_field: 1,
                residual: Predicate {
                    terms: vec![Term::new(4, CompOp::Eq, 0i64)], // kind = 0
                },
            }],
        },
    )
}

fn run(kind: StrategyKind, shared: bool) -> (f64, Option<procdb::rete::ReteStats>) {
    let pager = Pager::new_default();
    let catalog = build_catalog(&pager);
    // 24 form procedures. When `shared`, they use only 4 distinct windows
    // (high SF); otherwise every form has its own window (SF = 0).
    let procs: Vec<ProcedureDef> = (0..24u32)
        .map(|i| {
            let w = if shared { (i % 4) as i64 } else { i as i64 };
            form_procedure(i, w * 40, w * 40 + 39)
        })
        .collect();
    let mut engine = Engine::new(
        pager.clone(),
        catalog,
        procs,
        kind,
        EngineOptions::default(),
    )
    .expect("engine builds");
    engine.warm_up().unwrap();
    pager.ledger().reset();
    // Update-heavy workload: widgets move between forms.
    for round in 0..50i64 {
        engine
            .apply_update(&[(round * 13 % 2000, round * 29 % 2000)])
            .unwrap();
        engine.access((round % 24) as usize).unwrap();
    }
    let ms = pager.ledger().snapshot().priced(&CostConstants::default());
    (ms / 50.0, engine.rete_stats())
}

fn main() {
    println!("forms with shared subobjects — AVM vs shared Rete (RVM)\n");
    for shared in [false, true] {
        let label = if shared {
            "high sharing (4 distinct windows)"
        } else {
            "no sharing (24 windows)"
        };
        let (avm_ms, _) = run(StrategyKind::UpdateCacheAvm, shared);
        let (rvm_ms, stats) = run(StrategyKind::UpdateCacheRvm, shared);
        let stats = stats.unwrap();
        println!("{label}:");
        println!("  AVM  maintenance+access: {avm_ms:>8.1} ms/round (24 independent views)");
        println!(
            "  RVM  maintenance+access: {rvm_ms:>8.1} ms/round ({} memory nodes, {} and-nodes)",
            stats.memory_nodes, stats.and_nodes
        );
        println!();
    }
    println!("With sharing, the Rete network collapses 24 views onto 4 shared");
    println!("subnetworks — fewer memory nodes to refresh per update, exactly");
    println!("the paper's sharing-factor effect (Figures 11/18).");
}
