//! Strategy advisor: for your workload's update probability and object
//! size, which processing strategy should a DBMS pick?
//!
//! Prints the paper's winner-region map (Figure 12 / 19 territory) from
//! the analytical model, plus a worked recommendation for one concrete
//! workload.
//!
//! ```text
//! cargo run --release --example strategy_advisor
//! ```

use procdb::core::recommend;
use procdb::costmodel::{region_grid, Model, Params};

fn main() {
    println!("Winner regions, Model 1 (P2 = two-way join), defaults otherwise:\n");
    let grid = region_grid(Model::One, &Params::default());
    print!("{}", grid.ascii_map());
    let (r, c, u) = grid.family_shares();
    println!(
        "\nshares: AlwaysRecompute {:.0}%, Cache&Invalidate {:.0}%, UpdateCache {:.0}%\n",
        r * 100.0,
        c * 100.0,
        u * 100.0
    );

    println!("Winner regions, Model 2 (P2 = three-way join):\n");
    let grid2 = region_grid(Model::Two, &Params::default());
    print!("{}", grid2.ascii_map());

    // A concrete consultation: an OLTP-ish catalog service.
    println!("\n--- consultation ---");
    let workload = Params::default()
        .with_f(0.0005) // 50-tuple objects
        .with_update_probability(0.15) // 15% of operations are updates
        .with_z(0.1); // strong access locality
    let rec = recommend(Model::One, &workload);
    println!(
        "object size f = {}, P(update) = {:.2}, locality Z = {}:",
        workload.f,
        workload.update_probability(),
        workload.z
    );
    for (kind, ms) in procdb::core::StrategyKind::ALL.iter().zip(rec.predicted_ms) {
        let marker = if *kind == rec.strategy {
            "  <-- pick this"
        } else {
            ""
        };
        println!("  {:<18} {:>9.1} ms/access{}", kind.label(), ms, marker);
    }
    println!(
        "margin over runner-up: {:.2}x — {}",
        rec.margin,
        if rec.margin > 1.5 {
            "clear-cut"
        } else {
            "close call; prefer the safer Cache&Invalidate if update rates may spike (paper §8)"
        }
    );
}
