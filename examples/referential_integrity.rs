//! Referential integrity via database procedures — the paper's motivating
//! use case (4).
//!
//! A procedure `orphans` materializes the EMP tuples whose department has
//! moved out of the active range — i.e. referential violations. Under
//! **Update Cache** the violation set is always current, so an integrity
//! check is a cheap cache read instead of a join; under **Cache and
//! Invalidate** the check is cheap only until a relevant update, and
//! under **Always Recompute** every check pays the full join.
//!
//! ```text
//! cargo run --release --example referential_integrity
//! ```

use procdb::avm::{JoinStep, ViewDef};
use procdb::core::{Engine, EngineOptions, ProcedureDef, StrategyKind};
use procdb::query::{
    Catalog, CompOp, FieldType, Organization, Predicate, Schema, Table, Term, Value,
};
use procdb::storage::{CostConstants, Pager};

fn build_catalog(pager: &std::sync::Arc<Pager>) -> Catalog {
    pager.set_charging(false);
    // EMP(emp_id, dept, pad) — clustered by emp_id (the updated relation).
    let mut emp = Table::create(
        pager.clone(),
        "R1",
        Schema::new(vec![
            ("emp_id", FieldType::Int),
            ("dept", FieldType::Int),
            ("pad", FieldType::Bytes(32)),
        ]),
        Organization::BTree { key_field: 0 },
        0,
    )
    .unwrap();
    // DEPT(dept_id, active, pad) — hash on dept_id.
    let mut dept = Table::create(
        pager.clone(),
        "DEPT",
        Schema::new(vec![
            ("dept_id", FieldType::Int),
            ("active", FieldType::Int),
            ("pad", FieldType::Bytes(32)),
        ]),
        Organization::Hash { key_field: 0 },
        32,
    )
    .unwrap();
    for i in 0..3_000i64 {
        emp.insert(&vec![
            Value::Int(i),
            Value::Int(i % 30),
            Value::Bytes(vec![0; 4]),
        ])
        .unwrap();
    }
    for d in 0..30i64 {
        // Departments 0..24 active, 25..29 retired.
        let active = i64::from(d < 25);
        dept.insert(&vec![
            Value::Int(d),
            Value::Int(active),
            Value::Bytes(vec![0; 4]),
        ])
        .unwrap();
    }
    pager.ledger().reset();
    pager.set_charging(true);
    let mut cat = Catalog::new();
    cat.add(emp);
    cat.add(dept);
    cat
}

/// Violations: employees (in the audited id window) whose department is
/// retired (`active = 0`).
fn orphans_procedure() -> ProcedureDef {
    ProcedureDef::new(
        0,
        "orphans",
        ViewDef {
            base: "R1".into(),
            selection: Predicate::int_range(0, 0, 2_999),
            joins: vec![JoinStep {
                inner: "DEPT".into(),
                outer_key_field: 1,
                residual: Predicate {
                    terms: vec![Term::new(4, CompOp::Eq, 0i64)], // active = 0
                },
            }],
        },
    )
}

fn main() {
    let constants = CostConstants::default();
    println!("referential-integrity checks as a database procedure\n");
    println!(
        "{:<18} {:>14} {:>14} {:>12}",
        "strategy", "check ms (avg)", "update ms", "violations"
    );
    for kind in StrategyKind::ALL {
        let pager = Pager::new_default();
        let catalog = build_catalog(&pager);
        let mut engine = Engine::new(
            pager.clone(),
            catalog,
            vec![orphans_procedure()],
            kind,
            EngineOptions::default(),
        )
        .unwrap();
        engine.warm_up().unwrap();
        pager.ledger().reset();

        // Ten integrity checks interleaved with employee churn.
        let mut check_ms = 0.0;
        let mut update_ms = 0.0;
        let mut violations = 0usize;
        for round in 0..10i64 {
            let s0 = pager.ledger().snapshot();
            engine
                .apply_update(&[(round * 113 % 3000, round * 271 % 3000)])
                .unwrap();
            let s1 = pager.ledger().snapshot();
            let rows = engine.access(0).unwrap();
            let s2 = pager.ledger().snapshot();
            update_ms += s1.since(&s0).priced(&constants);
            check_ms += s2.since(&s1).priced(&constants);
            violations = rows.len();
        }
        println!(
            "{:<18} {:>14.1} {:>14.1} {:>12}",
            kind.label(),
            check_ms / 10.0,
            update_ms / 10.0,
            violations
        );
    }
    println!("\n500 employees sit in retired departments; Update Cache keeps that");
    println!("violation set continuously materialized, so each check is just a");
    println!("cache read — the paper's referential-integrity use case (§1).");
}
