//! Per-procedure strategy selection — the paper's §8 open problem, end
//! to end: *observe* a skewed workload, *decide* a strategy for each
//! procedure from its own update rate and object size, then *run* a
//! mixed engine and compare against the uniform strategies.
//!
//! ```text
//! cargo run --release --example adaptive_mixed
//! ```

use std::sync::Arc;

use procdb::avm::ViewDef;
use procdb::core::{
    decide_assignments, DecisionInput, Engine, EngineOptions, MixedEngine, ProcedureDef,
    StrategyKind, WorkloadObserver,
};
use procdb::query::{Catalog, FieldType, Organization, Predicate, Schema, Table, Value};
use procdb::storage::{AccountingMode, CostConstants, Pager, PagerConfig, Result};

const N: i64 = 4_000;

fn substrate() -> Result<(Arc<Pager>, Catalog)> {
    let pager = Pager::new(PagerConfig {
        page_size: 4000,
        buffer_capacity: 8192,
        mode: AccountingMode::Logical,
    });
    pager.set_charging(false);
    let schema = Schema::new(vec![
        ("skey", FieldType::Int),
        ("a", FieldType::Int),
        ("pad", FieldType::Bytes(84)),
    ]);
    let mut r1 = Table::create(
        pager.clone(),
        "R1",
        schema,
        Organization::BTree { key_field: 0 },
        0,
    )?;
    for i in 0..N {
        r1.insert(&vec![
            Value::Int(i),
            Value::Int(i % 50),
            Value::Bytes(vec![0; 4]),
        ])?;
    }
    pager.ledger().reset();
    pager.set_charging(true);
    let mut cat = Catalog::new();
    cat.add(r1);
    Ok((pager, cat))
}

fn selection(id: u32, lo: i64, hi: i64) -> ProcedureDef {
    ProcedureDef::new(
        id,
        format!("proc-{id}"),
        ViewDef {
            base: "R1".into(),
            selection: Predicate::int_range(0, lo, hi),
            joins: vec![],
        },
    )
}

/// The skewed workload: six procedures with very different lives.
///
/// * procs 0–2: tiny windows, read constantly, almost never updated;
/// * proc 3: a huge window that every update transaction hits, read once
///   in a blue moon;
/// * procs 4–5: medium windows with moderate traffic on both sides.
fn procedures() -> Vec<ProcedureDef> {
    vec![
        selection(0, 0, 39),
        selection(1, 40, 79),
        selection(2, 80, 119),
        selection(3, 1000, 3800),
        selection(4, 200, 399),
        selection(5, 400, 599),
    ]
}

fn workload() -> Vec<(bool, i64)> {
    // (is_update, payload): deterministic interleaving.
    let mut ops = Vec::new();
    for round in 0..250i64 {
        ops.push((false, round % 3)); // hot read of procs 0..2
        if round % 2 == 0 {
            ops.push((true, round)); // update into proc 3's window
        }
        if round % 10 == 0 {
            ops.push((false, 4 + (round / 10) % 2)); // warm procs 4,5
        }
        if round % 100 == 50 {
            ops.push((false, 3)); // rare read of the big object
        }
    }
    ops
}

fn run_uniform(kind: StrategyKind, constants: &CostConstants) -> f64 {
    let (pager, catalog) = substrate().unwrap();
    let mut e = Engine::new(pager, catalog, procedures(), kind, EngineOptions::default()).unwrap();
    e.warm_up().unwrap();
    e.ledger().reset();
    for (is_update, payload) in workload() {
        if is_update {
            let mods: Vec<(i64, i64)> = (0..8)
                .map(|j| {
                    let b = payload * 8 + j;
                    (1000 + b * 13 % 2800, 1000 + b * 31 % 2800)
                })
                .collect();
            e.apply_update(&mods).unwrap();
        } else {
            e.access(payload as usize).unwrap();
        }
    }
    e.ledger().snapshot().priced(constants)
}

fn main() {
    let constants = CostConstants::default();

    // ---- Phase 1: observe the workload on the cheapest-to-run engine.
    let (pager, catalog) = substrate().unwrap();
    let mut probe = Engine::new(
        pager,
        catalog,
        procedures(),
        StrategyKind::AlwaysRecompute,
        EngineOptions::default(),
    )
    .unwrap();
    let mut observer = WorkloadObserver::new(6);
    let windows: Vec<(i64, i64)> = procedures()
        .iter()
        .map(|p| p.view.selection.int_bounds(0).unwrap())
        .collect();
    for (is_update, payload) in workload() {
        if is_update {
            let mods: Vec<(i64, i64)> = (0..8)
                .map(|j| {
                    let b = payload * 8 + j;
                    (1000 + b * 13 % 2800, 1000 + b * 31 % 2800)
                })
                .collect();
            probe.apply_update(&mods).unwrap();
            let hit = |k: i64| {
                windows
                    .iter()
                    .enumerate()
                    .filter(move |(_, (lo, hi))| k >= *lo && k <= *hi)
            };
            let mut conflicting: Vec<usize> = Vec::new();
            for (old_k, new_k) in &mods {
                for (i, _) in hit(*old_k).chain(hit(*new_k)) {
                    if !conflicting.contains(&i) {
                        conflicting.push(i);
                    }
                }
            }
            observer.record_update(conflicting);
        } else {
            probe.access(payload as usize).unwrap();
            observer.record_access(payload as usize);
        }
    }

    // ---- Phase 2: decide per procedure.
    let inputs: Vec<DecisionInput> = (0..6)
        .map(|i| DecisionInput {
            recompute_ms: probe.estimate_recompute_ms(i, &constants),
            cached_read_ms: {
                let (lo, hi) = windows[i];
                // pages ≈ tuples / blocking factor
                (((hi - lo + 1) as f64 / 40.0).ceil()).max(1.0) * constants.c2
            },
            conflict_rate: 0.0, // filled in from the observer
            tuples_per_conflict: 8.0,
        })
        .collect();
    let assignment = decide_assignments(&observer, &inputs, &constants);
    println!("observed workload → per-procedure decisions:");
    for (i, kind) in assignment.iter().enumerate() {
        let s = observer.stats(i);
        println!(
            "  proc {i}: {:>4} reads, {:>4} conflicting updates  ->  {}",
            s.accesses,
            s.conflicting_updates,
            kind.label()
        );
    }

    // ---- Phase 3: run the mixed engine vs the uniform strategies.
    let mut mixed = MixedEngine::new(
        &assignment,
        &procedures(),
        EngineOptions::default(),
        substrate,
    )
    .unwrap();
    mixed.warm_up().unwrap();
    mixed.reset_ledgers();
    for (is_update, payload) in workload() {
        if is_update {
            let mods: Vec<(i64, i64)> = (0..8)
                .map(|j| {
                    let b = payload * 8 + j;
                    (1000 + b * 13 % 2800, 1000 + b * 31 % 2800)
                })
                .collect();
            mixed.apply_update(&mods).unwrap();
        } else {
            mixed.access(payload as usize).unwrap();
        }
    }
    let mixed_ms = mixed.total_ms(&constants);

    println!("\ntotal workload cost:");
    for kind in StrategyKind::ALL {
        println!(
            "  uniform {:<18} {:>12.0} ms",
            kind.label(),
            run_uniform(kind, &constants)
        );
    }
    println!(
        "  adaptive mixed       {mixed_ms:>14.0} ms   ({} groups)",
        mixed.group_count()
    );
}
