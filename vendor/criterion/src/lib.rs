//! Offline stand-in for `criterion 0.5` (subset; see `vendor/README.md`).
//!
//! A minimal `cargo bench` harness: each `bench_function` runs a short
//! warm-up, then times `sample_size` samples (each sized to take roughly
//! a millisecond) and prints min/median/mean per benchmark. No
//! statistics engine, HTML reports, or regression tracking.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness handle.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        run_bench(id, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in this group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.criterion.sample_size, f);
        self
    }

    /// Close the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the
/// routine to measure.
pub struct Bencher {
    sample_size: usize,
    report: Option<String>,
}

impl Bencher {
    /// Measure `f`, which is called repeatedly.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm up and size one sample to ~1ms (at least one call).
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let per_sample = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            samples.push(t.elapsed().as_secs_f64() / per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        self.report = Some(format!(
            "min {:>10}  median {:>10}  mean {:>10}  ({} samples x {} iters)",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            self.sample_size,
            per_sample,
        ));
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn run_bench(id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        sample_size,
        report: None,
    };
    f(&mut b);
    match b.report {
        Some(r) => println!("{id:<40} {r}"),
        None => println!("{id:<40} (no iter() call)"),
    }
}

/// Declare a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0);
        let mut g = c.benchmark_group("grp");
        g.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(5e-9).contains("ns"));
        assert!(fmt_time(5e-6).contains("µs"));
        assert!(fmt_time(5e-3).contains("ms"));
        assert!(fmt_time(2.0).contains(" s"));
    }
}
