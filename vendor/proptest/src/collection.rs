//! Collection strategies.

use std::ops::Range;

use crate::{Strategy, TestRng};

/// Strategy producing `Vec`s of values from an element strategy, with a
/// length drawn from `size`.
pub struct VecStrategy<S> {
    elem: S,
    size: Range<usize>,
}

/// `vec(element_strategy, size_range)` — the `proptest::collection::vec`
/// entry point.
pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range");
    VecStrategy { elem, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.size.clone());
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}
