//! Offline stand-in for `proptest 1.x` (subset; see `vendor/README.md`).
//!
//! Provides the surface this workspace's property tests use — the
//! [`proptest!`]/[`prop_oneof!`] macros, [`Strategy`] with `prop_map` and
//! `boxed`, [`Just`], [`any`], `collection::vec`, range and tuple
//! strategies, and [`ProptestConfig::with_cases`] — as a plain
//! random-case runner. Each test function draws `cases` inputs from a
//! generator seeded by the test's module path (reproducible run to run)
//! and executes its body; assertion macros panic like `assert!`.
//! **No shrinking** is performed on failure.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore, SampleRange, SeedableRng};

pub mod collection;

/// The runner's random source (wraps the vendored [`StdRng`]).
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic generator derived from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform sample from a range.
    pub fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        self.0.gen_range(range)
    }
}

/// Test-case generation strategy: anything that can produce a `Value`
/// from the runner's RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values with a wide dynamic range.
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let exp = rng.gen_range(-20i32..20) as f64;
        (unit * 2.0 - 1.0) * exp.exp2()
    }
}

/// Strategy for an [`Arbitrary`] type (see [`any`]).
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Weighted union of strategies (built by [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Build a union; weights must sum to a positive value.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum mismatch")
    }
}

/// Why a test case failed (carried by [`TestCaseResult`]).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

/// Result type of one property-test case; bodies may early-exit with
/// `return Ok(())` to skip a case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// The common imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng, Union,
    };
}

/// Assert a condition inside a property test (panics on failure, like
/// `assert!` — this runner does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Weighted/unweighted union of strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random draws of its arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                // The closure gives `$body` a place to `return Err(...)`
                // early (the real proptest's TestCaseResult contract).
                #[allow(clippy::redundant_closure_call)]
                let __outcome: $crate::TestCaseResult = (|| {
                    $body
                    Ok(())
                })();
                if let Err(e) = __outcome {
                    panic!("test case {} failed: {}", __case, e.0);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Put(u8),
        Del(usize),
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => any::<u8>().prop_map(Op::Put),
            1 => (0usize..32).prop_map(Op::Del),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_in_bounds(x in 0i64..50, (a, b) in ((1u32..9), (0.0..1.0f64))) {
            prop_assert!((0..50).contains(&x));
            prop_assert!((1..9).contains(&a));
            prop_assert!((0.0..1.0).contains(&b));
        }

        #[test]
        fn vec_respects_size(v in crate::collection::vec(any::<u8>(), 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
        }

        #[test]
        fn oneof_hits_every_arm(ops in crate::collection::vec(op(), 64..65)) {
            // With 128 cases of 64 draws, both arms appear overall; per
            // case we only check well-formedness.
            for o in ops {
                match o {
                    Op::Put(_) => {}
                    Op::Del(i) => prop_assert!(i < 32),
                }
            }
        }

        #[test]
        fn just_yields_value(s in prop_oneof![Just(0.5f64), Just(1.0)]) {
            prop_assert!(s == 0.5 || s == 1.0);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
