//! Offline stand-in for `rand 0.8` (subset; see `vendor/README.md`).
//!
//! Implements the calling convention this workspace uses —
//! `StdRng::seed_from_u64`, `Rng::gen_range(range)`, `Rng::gen_bool(p)` —
//! over a xoshiro256\*\* core seeded by splitmix64. Deterministic under a
//! seed and statistically solid, but **not** bit-compatible with the real
//! `rand` crate's streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub mod rngs;

/// Low-level uniform 64-bit source.
pub trait RngCore {
    /// Next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly (the subset of rand's
/// `SampleRange` this workspace needs).
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % width;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % width;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` (must be in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} out of [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..10 hit");
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let w = rng.gen_range(3..=3u32);
            assert_eq!(w, 3);
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "frac = {frac}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
