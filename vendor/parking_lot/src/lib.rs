//! Offline stand-in for `parking_lot` (subset; see `vendor/README.md`).
//!
//! Thin non-poisoning wrappers over `std::sync` primitives with the
//! `parking_lot` calling convention: `lock()`/`read()`/`write()` return
//! guards directly instead of `Result`s. A panic while holding a guard
//! simply releases the lock for the next acquirer, which matches
//! `parking_lot`'s behavior.

#![forbid(unsafe_code)]

use std::sync::{self, TryLockError};

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock (non-poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock (non-poisoning).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new readers-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_share() {
        let l = Arc::new(RwLock::new(7));
        let a = l.read();
        let b = l.read();
        assert_eq!((*a, *b), (7, 7));
        drop((a, b));
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }

    #[test]
    fn try_write_blocked_by_reader() {
        let l = RwLock::new(0);
        let r = l.read();
        assert!(l.try_write().is_none());
        drop(r);
        assert!(l.try_write().is_some());
    }
}
