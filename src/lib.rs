//! # procdb
//!
//! A from-scratch Rust reproduction of:
//!
//! > Eric N. Hanson, *Processing Queries Against Database Procedures: A
//! > Performance Analysis*. SIGMOD 1988 (UCB/ERL Memorandum M87/68).
//!
//! A **database procedure** is a stored query. The paper compares four
//! ways to answer "what does this procedure currently return?":
//!
//! * **Always Recompute** — run the stored, precompiled plan on every
//!   access;
//! * **Cache and Invalidate** — cache the last result; i-locks (rule
//!   indexing) invalidate it when updates conflict; recompute on miss;
//! * **Update Cache (AVM)** — keep the cache permanently current with
//!   algebraic differential view maintenance;
//! * **Update Cache (RVM)** — keep it current with a shared Rete network.
//!
//! This crate is a facade over the workspace:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`costmodel`] | every closed-form cost formula of the paper |
//! | [`obs`] | metrics registry, span tracing, Prometheus exposition |
//! | [`storage`] | pages, buffer pool, heap files, the cost ledger |
//! | [`index`] | clustered B+-tree and hash-file organizations |
//! | [`query`] | tuples, predicates, plans, cost-accounted executor |
//! | [`ilock`] | invalidation locks (rule indexing) |
//! | [`avm`] | algebraic (non-shared) view maintenance |
//! | [`rete`] | the shared Rete network |
//! | [`core`] | the procedure engine with the four strategies |
//! | [`shard`] | hash-partitioned parallel engines, scatter-gather access |
//! | [`workload`] | database/procedure/stream generators + simulator |
//!
//! ## Quick start
//!
//! ```
//! use procdb::core::{Engine, EngineOptions, ProcedureDef, StrategyKind};
//! use procdb::avm::ViewDef;
//! use procdb::query::{Catalog, FieldType, Organization, Predicate, Schema, Table, Value};
//! use procdb::storage::Pager;
//!
//! // A tiny EMP relation, clustered by employee id.
//! let pager = Pager::new_default();
//! pager.set_charging(false); // loading is setup, not measured work
//! let schema = Schema::new(vec![("id", FieldType::Int), ("dept", FieldType::Int)]);
//! let mut emp = Table::create(pager.clone(), "R1", schema,
//!                             Organization::BTree { key_field: 0 }, 0).unwrap();
//! for i in 0..100i64 {
//!     emp.insert(&vec![Value::Int(i), Value::Int(i % 7)]).unwrap();
//! }
//! pager.set_charging(true);
//! let mut catalog = Catalog::new();
//! catalog.add(emp);
//!
//! // A stored database procedure: employees 10..=19.
//! let proc_def = ProcedureDef::new(0, "tens", ViewDef {
//!     base: "R1".into(),
//!     selection: Predicate::int_range(0, 10, 19),
//!     joins: vec![],
//! });
//!
//! // Serve it with the Update Cache (Rete) strategy.
//! let mut engine = Engine::new(pager, catalog, vec![proc_def],
//!                              StrategyKind::UpdateCacheRvm,
//!                              EngineOptions::default()).unwrap();
//! assert_eq!(engine.access(0).unwrap().len(), 10);
//! // An in-place key update is maintained differentially:
//! engine.apply_update(&[(15, 500)]).unwrap();
//! assert_eq!(engine.access(0).unwrap().len(), 9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use procdb_avm as avm;
pub use procdb_core as core;
pub use procdb_costmodel as costmodel;
pub use procdb_ilock as ilock;
pub use procdb_index as index;
pub use procdb_obs as obs;
pub use procdb_query as query;
pub use procdb_rete as rete;
pub use procdb_shard as shard;
pub use procdb_storage as storage;
pub use procdb_workload as workload;
